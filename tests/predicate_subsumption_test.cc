// Predicate-subsumption caching end to end: an overlapping range
// workload where exact-fingerprint matching would hit ~0% is served
// almost entirely by subsumption with zero LLM round trips and
// byte-identical relations (sequential and pipelined), the reordered-
// WHERE canonicalisation regression, the residual operator in Explain,
// and a concurrent-sessions hammer over a shared cache.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "api/database.h"
#include "core/galois_executor.h"
#include "core/materialisation_cache.h"
#include "knowledge/workload.h"
#include "llm/simulated_llm.h"

namespace galois::core {
namespace {

const knowledge::SpiderLikeWorkload& W() {
  static const auto* w = []() {
    auto r = knowledge::SpiderLikeWorkload::Create();
    EXPECT_TRUE(r.ok());
    return new knowledge::SpiderLikeWorkload(std::move(r).value());
  }();
  return *w;
}

/// Noise-free profile: residual in-memory re-checks must agree with the
/// model's filter verdicts exactly, so equivalence asserts byte
/// identity, not approximation.
llm::ModelProfile PerfectProfile() {
  llm::ModelProfile p = llm::ModelProfile::ChatGpt();
  p.name = "perfect";
  p.coverage_floor = 1.0;
  p.coverage_gain = 0.0;
  p.unknown_rate = 0.0;
  p.fake_entity_confidence = 0.0;
  p.fact_accuracy = 1.0;
  p.numeric_fact_accuracy = 1.0;
  p.reference_style_noise = 0.0;
  p.value_format_noise = 0.0;
  p.verbosity = 0.0;
  p.paging_fatigue = 0.0;
  p.hallucinated_key_rate = 0.0;
  p.pushdown_error = 0.0;
  p.filter_check_error = 0.0;
  return p;
}

/// The overlapping workload: the first (widest) query pays for the
/// materialisation, every later filter is strictly stronger — distinct
/// descriptors (so exact matching would miss all of them), all
/// contained in the first one's rows.
std::vector<std::string> OverlappingQueries() {
  return {
      "SELECT name, population FROM country WHERE population > 1000000",
      "SELECT name, population FROM country WHERE population > 50000000",
      "SELECT name, population FROM country WHERE population >= 100000000",
      "SELECT c.name, c.population FROM country c "
      "WHERE c.population > 50000000 AND c.population < 200000000",
      "SELECT name, population FROM country WHERE population > 250000000",
  };
}

TEST(PredicateSubsumptionTest, OverlappingWorkloadServedBySubsumption) {
  for (bool pipelined : {false, true}) {
    SCOPED_TRACE(pipelined ? "pipelined" : "sequential");
    llm::SimulatedLlm model(&W().kb(), PerfectProfile(), &W().catalog(), 7);
    ExecutionOptions options;
    options.pipeline_phases = pipelined;
    GaloisExecutor cached(&model, &W().catalog(), options);
    MaterialisationCache cache;
    cached.set_materialisation_cache(&cache);

    // Uncached reference runs on its own model instance with the same
    // seed: what each query would produce with no reuse at all.
    llm::SimulatedLlm fresh_model(&W().kb(), PerfectProfile(),
                                  &W().catalog(), 7);
    GaloisExecutor uncached(&fresh_model, &W().catalog(), options);

    int64_t exact = 0;
    int64_t subsumed = 0;
    int64_t lookups = 0;
    const std::vector<std::string> queries = OverlappingQueries();
    for (size_t i = 0; i < queries.size(); ++i) {
      auto got = cached.RunSql(queries[i]);
      ASSERT_TRUE(got.ok()) << queries[i] << ": " << got.status();
      auto want = uncached.ExecuteSql(queries[i]);
      ASSERT_TRUE(want.ok());
      // Byte-identical to a from-scratch run — the residual filter must
      // reproduce the model's verdicts exactly.
      EXPECT_TRUE(got->relation.SameContents(*want)) << queries[i];
      lookups += got->table_cache_lookups;
      exact += got->table_cache_exact_hits;
      subsumed += got->table_cache_subsumption_hits;
      if (i > 0) {
        // Every follow-up is served from the widest entry: zero LLM
        // round trips.
        EXPECT_EQ(got->cost.num_prompts, 0) << queries[i];
        EXPECT_EQ(got->table_cache_subsumption_hits, 1) << queries[i];
      }
    }
    EXPECT_EQ(lookups, static_cast<int64_t>(queries.size()));
    // The workload never repeats a descriptor: exact matching alone
    // would serve 0%; subsumption serves all but the cold query (80%).
    EXPECT_EQ(exact, 0);
    EXPECT_GE(static_cast<double>(subsumed) / static_cast<double>(lookups),
              0.6);
  }
}

TEST(PredicateSubsumptionTest, ReorderedWhereConjunctsHitExactly) {
  llm::SimulatedLlm model(&W().kb(), PerfectProfile(), &W().catalog(), 7);
  ExecutionOptions options;
  options.pushdown_policy = PushdownPolicy::kNever;
  GaloisExecutor galois(&model, &W().catalog(), options);
  MaterialisationCache cache;
  galois.set_materialisation_cache(&cache);

  auto first = galois.RunSql(
      "SELECT name FROM country "
      "WHERE continent = 'Europe' AND population > 10000000");
  ASSERT_TRUE(first.ok());
  EXPECT_GT(first->cost.num_prompts, 0);

  // Same conjuncts, opposite order: canonicalisation makes this the
  // same descriptor — an *exact* hit, no residual work.
  auto reordered = galois.RunSql(
      "SELECT name FROM country "
      "WHERE population > 10000000 AND continent = 'Europe'");
  ASSERT_TRUE(reordered.ok());
  EXPECT_EQ(reordered->cost.num_prompts, 0);
  EXPECT_EQ(reordered->table_cache_exact_hits, 1);
  EXPECT_EQ(reordered->table_cache_subsumption_hits, 0);
  EXPECT_TRUE(first->relation.SameContents(reordered->relation));
}

TEST(PredicateSubsumptionTest, ResidualFilterAppearsInExplain) {
  llm::SimulatedLlm model(&W().kb(), PerfectProfile(), &W().catalog(), 7);
  GaloisExecutor galois(&model, &W().catalog());
  MaterialisationCache cache;
  galois.set_materialisation_cache(&cache);

  ASSERT_TRUE(galois
                  .RunSql("SELECT name, population FROM country "
                          "WHERE population > 1000000")
                  .ok());
  auto warm = galois.RunSql(
      "SELECT name, population FROM country WHERE population > 100000000");
  ASSERT_TRUE(warm.ok());
  EXPECT_EQ(warm->table_cache_subsumption_hits, 1);
  // The in-memory re-check is a first-class operator with cost
  // attribution (zero LLM spend) in the physical plan report.
  EXPECT_NE(warm->physical_plan.find("ResidualFilter"), std::string::npos)
      << warm->physical_plan;
  EXPECT_NE(warm->physical_plan.find("population > 100000000"),
            std::string::npos)
      << warm->physical_plan;

  // An exact warm hit has no residual work, so no such operator.
  auto exact = galois.RunSql(
      "SELECT name, population FROM country WHERE population > 1000000");
  ASSERT_TRUE(exact.ok());
  EXPECT_EQ(exact->table_cache_exact_hits, 1);
  EXPECT_EQ(exact->physical_plan.find("ResidualFilter"), std::string::npos)
      << exact->physical_plan;
}

TEST(PredicateSubsumptionTest, LikeFilteredQueryIsNeverSubsumed) {
  llm::SimulatedLlm model(&W().kb(), PerfectProfile(), &W().catalog(), 7);
  GaloisExecutor galois(&model, &W().catalog());
  MaterialisationCache cache;
  galois.set_materialisation_cache(&cache);

  // Unfiltered scan cached first: a superset of everything.
  ASSERT_TRUE(galois.RunSql("SELECT name, capital FROM country").ok());
  // LIKE has no engine-side mirror of the model's pattern semantics, so
  // the wider entry must NOT serve it — the query pays full price.
  auto like = galois.RunSql(
      "SELECT name, capital FROM country WHERE name LIKE '%land%'");
  ASSERT_TRUE(like.ok());
  EXPECT_EQ(like->table_cache_hits, 0);
  EXPECT_GT(like->cost.num_prompts, 0);

  // But an identical LIKE descriptor is a plain exact hit.
  auto again = galois.RunSql(
      "SELECT name, capital FROM country WHERE name LIKE '%land%'");
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->table_cache_exact_hits, 1);
  EXPECT_EQ(again->cost.num_prompts, 0);
  EXPECT_TRUE(like->relation.SameContents(again->relation));
}

TEST(PredicateSubsumptionTest, LimitBoundedEntryNeverServesBroader) {
  llm::SimulatedLlm model(&W().kb(), PerfectProfile(), &W().catalog(), 7);
  ExecutionOptions options;
  GaloisExecutor galois(&model, &W().catalog(), options);
  MaterialisationCache cache;
  galois.set_materialisation_cache(&cache);

  // A filterless LIMIT is the one shape the planner provably bounds the
  // key scan with (scan_key_limit = 2): the materialised entry is a
  // genuine prefix of the table, not the whole table.
  auto bounded = galois.RunSql("SELECT name, population FROM country LIMIT 2");
  ASSERT_TRUE(bounded.ok());
  EXPECT_EQ(bounded->relation.NumRows(), 2u);

  // The unbounded query must not be served from that prefix — it would
  // silently lose rows.
  auto unbounded = galois.RunSql("SELECT name, population FROM country");
  ASSERT_TRUE(unbounded.ok());
  EXPECT_EQ(unbounded->table_cache_hits, 0);
  EXPECT_GT(unbounded->cost.num_prompts, 0);
  EXPECT_GT(unbounded->relation.NumRows(), 2u);

  // Rerunning the bounded query finds its own prefix entry — an exact
  // hit beats subsuming the wider entry.
  auto bounded_again = galois.RunSql(
      "SELECT name, population FROM country LIMIT 2");
  ASSERT_TRUE(bounded_again.ok());
  EXPECT_EQ(bounded_again->cost.num_prompts, 0);
  EXPECT_EQ(bounded_again->table_cache_exact_hits, 1);
  EXPECT_TRUE(bounded_again->relation.SameContents(bounded->relation));

  // The reverse direction is legal: with only the unbounded entry
  // cached, the bounded query is served by subsumption and the plan's
  // Limit node re-applies the bound.
  MaterialisationCache fresh;
  llm::SimulatedLlm model2(&W().kb(), PerfectProfile(), &W().catalog(), 7);
  GaloisExecutor galois2(&model2, &W().catalog(), options);
  galois2.set_materialisation_cache(&fresh);
  ASSERT_TRUE(galois2.RunSql("SELECT name, population FROM country").ok());
  auto bounded_by_subsumption =
      galois2.RunSql("SELECT name, population FROM country LIMIT 2");
  ASSERT_TRUE(bounded_by_subsumption.ok());
  EXPECT_EQ(bounded_by_subsumption->cost.num_prompts, 0);
  EXPECT_EQ(bounded_by_subsumption->table_cache_subsumption_hits, 1);
  EXPECT_TRUE(bounded_by_subsumption->relation.SameContents(bounded->relation));

  // And by contrast, a LIMIT under a WHERE cannot bound the scan, so its
  // entry holds the full filtered table and legally serves the unbounded
  // variant of the same filter.
  auto filtered_limit = galois.RunSql(
      "SELECT name, population FROM country "
      "WHERE population > 1000000 LIMIT 2");
  ASSERT_TRUE(filtered_limit.ok());
  auto filtered_full = galois.RunSql(
      "SELECT name, population FROM country WHERE population > 1000000");
  ASSERT_TRUE(filtered_full.ok());
  EXPECT_EQ(filtered_full->table_cache_hits, 1);
  EXPECT_EQ(filtered_full->cost.num_prompts, 0);
  EXPECT_GT(filtered_full->relation.NumRows(), 2u);
}

TEST(PredicateSubsumptionTest, ConcurrentSessionsHammerSharedCache) {
  // Many sessions racing overlapping queries against one Database-owned
  // cache: every result must equal its uncached reference, and the
  // combined traffic must show real subsumption reuse. Run under TSan
  // in CI.
  DatabaseOptions options;
  options.workload = &W();
  BackendSpec backend;
  backend.simulated = PerfectProfile();
  backend.name = "perfect";
  options.backends.push_back(backend);
  options.enable_materialisation_cache = true;
  auto db = Database::Open(std::move(options));
  ASSERT_TRUE(db.ok());

  llm::SimulatedLlm fresh_model(&W().kb(), PerfectProfile(), &W().catalog(),
                                7);
  GaloisExecutor uncached(&fresh_model, &W().catalog());
  const std::vector<std::string> queries = OverlappingQueries();
  std::vector<Relation> expected;
  for (const std::string& sql : queries) {
    auto want = uncached.ExecuteSql(sql);
    ASSERT_TRUE(want.ok());
    expected.push_back(std::move(*want));
  }

  constexpr int kRounds = 4;
  std::vector<Session> sessions;
  std::vector<AsyncQuery> inflight;
  std::vector<size_t> which;
  for (int round = 0; round < kRounds; ++round) {
    for (size_t q = 0; q < queries.size(); ++q) {
      sessions.push_back((*db)->CreateSession());
      inflight.push_back(sessions.back().QueryAsync(queries[q]));
      which.push_back(q);
    }
  }
  int64_t subsumed = 0;
  for (size_t i = 0; i < inflight.size(); ++i) {
    auto got = inflight[i].Join();
    ASSERT_TRUE(got.ok()) << queries[which[i]] << ": " << got.status();
    EXPECT_TRUE(got->relation.SameContents(expected[which[i]]))
        << queries[which[i]];
    subsumed += got->table_cache_subsumption_hits;
  }
  EXPECT_GT(subsumed, 0);
  auto stats = (*db)->materialisation_cache()->stats();
  EXPECT_EQ(stats.lookups,
            static_cast<int64_t>(kRounds * queries.size()));
  EXPECT_GT(stats.predicate_subsumption_hits, 0);
}

}  // namespace
}  // namespace galois::core
