// MaterialisationCache: fingerprinting, column subsumption, LRU
// eviction, and the executor integration (warm reruns with zero LLM
// round trips, provenance bypass, alias requalification).

#include <gtest/gtest.h>

#include "core/galois_executor.h"
#include "core/materialisation_cache.h"
#include "knowledge/workload.h"
#include "llm/simulated_llm.h"

namespace galois::core {
namespace {

const knowledge::SpiderLikeWorkload& W() {
  static const auto* w = []() {
    auto r = knowledge::SpiderLikeWorkload::Create();
    EXPECT_TRUE(r.ok());
    return new knowledge::SpiderLikeWorkload(std::move(r).value());
  }();
  return *w;
}

const catalog::TableDef& CountryDef() {
  auto def = W().catalog().GetTable("country");
  EXPECT_TRUE(def.ok());
  return *def.value();
}

/// Pointers to the named non-key columns of `def`, in the given order.
std::vector<const catalog::ColumnDef*> Cols(
    const catalog::TableDef& def, const std::vector<std::string>& names) {
  std::vector<const catalog::ColumnDef*> out;
  for (const std::string& n : names) {
    auto col = def.FindColumn(n);
    EXPECT_TRUE(col.ok()) << n;
    out.push_back(col.value());
  }
  return out;
}

/// A little key+columns relation ("country" shaped) for unit tests.
Relation MakeRelation(const catalog::TableDef& def,
                      const std::vector<std::string>& columns,
                      size_t rows) {
  Schema schema;
  schema.AddColumn(Column(def.key_column, DataType::kString, "t"));
  for (const std::string& c : columns) {
    schema.AddColumn(Column(c, DataType::kString, "t"));
  }
  Relation rel(std::move(schema));
  for (size_t r = 0; r < rows; ++r) {
    Tuple row;
    row.push_back(Value::String("key" + std::to_string(r)));
    for (const std::string& c : columns) {
      row.push_back(Value::String(c + std::to_string(r)));
    }
    rel.AddRowUnchecked(std::move(row));
  }
  return rel;
}

TEST(MaterialisationCacheTest, FingerprintSeparatesResultAffectingState) {
  const catalog::TableDef& def = CountryDef();
  ExecutionOptions opts;
  std::string base = MaterialisationCache::Fingerprint(
      def, {}, false, opts, "chatgpt");

  EXPECT_EQ(base, MaterialisationCache::Fingerprint(def, {}, false, opts,
                                                    "chatgpt"));
  // A different model, filter set, pushdown decision or result-affecting
  // option must change the fingerprint.
  EXPECT_NE(base, MaterialisationCache::Fingerprint(def, {}, false, opts,
                                                    "flan"));
  llm::PromptFilter filter;
  filter.attribute = "continent";
  filter.op = "=";
  filter.value = Value::String("Europe");
  EXPECT_NE(base, MaterialisationCache::Fingerprint(def, {filter}, false,
                                                    opts, "chatgpt"));
  EXPECT_NE(MaterialisationCache::Fingerprint(def, {filter}, false, opts,
                                              "chatgpt"),
            MaterialisationCache::Fingerprint(def, {filter}, true, opts,
                                              "chatgpt"));
  ExecutionOptions verify = opts;
  verify.verify_cells = true;
  EXPECT_NE(base, MaterialisationCache::Fingerprint(def, {}, false, verify,
                                                    "chatgpt"));
  // Dispatch-only knobs never change results, so they share entries.
  ExecutionOptions dispatch = opts;
  dispatch.batch_prompts = true;
  dispatch.max_batch_size = 4;
  dispatch.parallel_batches = 8;
  dispatch.pipeline_phases = true;
  EXPECT_EQ(base, MaterialisationCache::Fingerprint(def, {}, false,
                                                    dispatch, "chatgpt"));
}

TEST(MaterialisationCacheTest, ExactHitRoundTripsAndRequalifies) {
  const catalog::TableDef& def = CountryDef();
  MaterialisationCache cache;
  auto cols = Cols(def, {"capital", "population"});
  cache.Insert("fp", cols, MakeRelation(def, {"capital", "population"}, 3));

  auto hit = cache.Lookup("fp", def, cols, "co");
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->NumRows(), 3u);
  ASSERT_EQ(hit->NumColumns(), 3u);
  EXPECT_EQ(hit->schema().column(0).table, "co");
  EXPECT_EQ(hit->schema().column(1).name, "capital");
  EXPECT_EQ(hit->At(1, 1).ToString(), "capital1");
  EXPECT_EQ(cache.stats().hits, 1);
  EXPECT_EQ(cache.stats().subsumption_hits, 0);

  EXPECT_FALSE(cache.Lookup("other-fp", def, cols, "co").has_value());
}

TEST(MaterialisationCacheTest, WiderEntryServesNarrowerByProjection) {
  const catalog::TableDef& def = CountryDef();
  MaterialisationCache cache;
  cache.Insert("fp", Cols(def, {"capital", "population", "continent"}),
               MakeRelation(def, {"capital", "population", "continent"},
                            2));

  // Narrower, differently-ordered subset: served by projection.
  auto hit = cache.Lookup("fp", def, Cols(def, {"continent"}), "x");
  ASSERT_TRUE(hit.has_value());
  ASSERT_EQ(hit->NumColumns(), 2u);
  EXPECT_EQ(hit->schema().column(1).name, "continent");
  EXPECT_EQ(hit->At(0, 1).ToString(), "continent0");
  EXPECT_EQ(cache.stats().subsumption_hits, 1);

  // A wider need than any entry misses.
  EXPECT_FALSE(
      cache.Lookup("fp", def, Cols(def, {"capital", "gdp"}), "x")
          .has_value());
}

TEST(MaterialisationCacheTest, WidestEntryWinsAndNarrowInsertRefreshes) {
  const catalog::TableDef& def = CountryDef();
  MaterialisationCache cache;
  cache.Insert("fp", Cols(def, {"capital"}),
               MakeRelation(def, {"capital"}, 2));
  EXPECT_EQ(cache.size(), 1u);
  // Wider insert replaces in place (still one entry)...
  cache.Insert("fp", Cols(def, {"capital", "population"}),
               MakeRelation(def, {"capital", "population"}, 2));
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_TRUE(cache.Lookup("fp", def, Cols(def, {"population"}), "t")
                  .has_value());
  // ...and a narrower re-insert is a refresh, not a downgrade.
  cache.Insert("fp", Cols(def, {"capital"}),
               MakeRelation(def, {"capital"}, 2));
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_TRUE(cache.Lookup("fp", def, Cols(def, {"population"}), "t")
                  .has_value());
}

TEST(MaterialisationCacheTest, EvictsLeastRecentlyUsed) {
  const catalog::TableDef& def = CountryDef();
  MaterialisationCache cache(/*max_entries=*/2);
  auto cols = Cols(def, {"capital"});
  Relation rel = MakeRelation(def, {"capital"}, 1);
  cache.Insert("a", cols, rel);
  cache.Insert("b", cols, rel);
  EXPECT_TRUE(cache.Lookup("a", def, cols, "t").has_value());  // a is MRU
  cache.Insert("c", cols, rel);                                // evicts b
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.stats().evictions, 1);
  EXPECT_TRUE(cache.Lookup("a", def, cols, "t").has_value());
  EXPECT_FALSE(cache.Lookup("b", def, cols, "t").has_value());
  EXPECT_TRUE(cache.Lookup("c", def, cols, "t").has_value());
}

class MaterialisationCacheExecutorTest : public ::testing::Test {
 protected:
  MaterialisationCacheExecutorTest()
      : model_(&W().kb(), llm::ModelProfile::ChatGpt(), &W().catalog(),
               7) {}
  llm::SimulatedLlm model_;
  MaterialisationCache cache_;
};

TEST_F(MaterialisationCacheExecutorTest, WarmRerunIsFreeAndIdentical) {
  GaloisExecutor galois(&model_, &W().catalog());
  galois.set_materialisation_cache(&cache_);
  const char* sql =
      "SELECT name, capital FROM country WHERE continent = 'Europe'";
  auto cold = galois.RunSql(sql);
  ASSERT_TRUE(cold.ok());
  EXPECT_GT(cold->cost.num_prompts, 0);
  EXPECT_EQ(cold->table_cache_lookups, 1);
  EXPECT_EQ(cold->table_cache_hits, 0);

  auto warm = galois.RunSql(sql);
  ASSERT_TRUE(warm.ok());
  EXPECT_TRUE(cold->relation.SameContents(warm->relation));
  EXPECT_EQ(warm->cost.num_prompts, 0);
  EXPECT_EQ(warm->table_cache_hits, 1);
}

TEST_F(MaterialisationCacheExecutorTest,
       NarrowerQueryAndNewAliasServedBySubsumption) {
  GaloisExecutor galois(&model_, &W().catalog());
  galois.set_materialisation_cache(&cache_);
  auto wide = galois.RunSql(
      "SELECT name, capital, population FROM country "
      "WHERE continent = 'Europe'");
  ASSERT_TRUE(wide.ok());

  // Same fingerprint, subset of the columns, different alias: zero
  // prompts, correctly requalified schema.
  auto narrow = galois.RunSql(
      "SELECT c.capital FROM country c WHERE c.continent = 'Europe'");
  ASSERT_TRUE(narrow.ok());
  EXPECT_EQ(narrow->cost.num_prompts, 0);
  EXPECT_EQ(narrow->table_cache_hits, 1);
  EXPECT_EQ(narrow->relation.NumRows(), wide->relation.NumRows());
  EXPECT_EQ(cache_.stats().subsumption_hits, 1);

  // The cached projection equals a fresh materialisation.
  llm::SimulatedLlm fresh(&W().kb(), llm::ModelProfile::ChatGpt(),
                          &W().catalog(), 7);
  GaloisExecutor uncached(&fresh, &W().catalog());
  auto expect = uncached.ExecuteSql(
      "SELECT c.capital FROM country c WHERE c.continent = 'Europe'");
  ASSERT_TRUE(expect.ok());
  EXPECT_TRUE(narrow->relation.SameContents(*expect));
}

TEST_F(MaterialisationCacheExecutorTest, DifferentFilterMisses) {
  GaloisExecutor galois(&model_, &W().catalog());
  galois.set_materialisation_cache(&cache_);
  ASSERT_TRUE(galois
                  .ExecuteSql("SELECT name, capital FROM country "
                              "WHERE continent = 'Europe'")
                  .ok());
  auto other = galois.RunSql(
      "SELECT name, capital FROM country WHERE continent = 'Asia'");
  ASSERT_TRUE(other.ok());
  EXPECT_EQ(other->table_cache_hits, 0);
  EXPECT_GT(other->cost.num_prompts, 0);
}

TEST_F(MaterialisationCacheExecutorTest, ProvenanceRunsBypassTheCache) {
  ExecutionOptions opts;
  opts.record_provenance = true;
  GaloisExecutor galois(&model_, &W().catalog(), opts);
  galois.set_materialisation_cache(&cache_);
  const char* sql = "SELECT name, capital FROM country";
  ASSERT_TRUE(galois.RunSql(sql).ok());
  auto second = galois.RunSql(sql);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->table_cache_lookups, 0);
  EXPECT_EQ(cache_.size(), 0u);
  // The trace is populated on every run — nothing was served from cache.
  EXPECT_FALSE(second->trace.cells.empty());
}

}  // namespace
}  // namespace galois::core
