// MaterialisationCache: base-key/descriptor keying, predicate
// subsumption, column subsumption, LRU eviction, and the executor
// integration (warm reruns with zero LLM round trips, provenance
// bypass, alias requalification).

#include <gtest/gtest.h>

#include "core/galois_executor.h"
#include "core/materialisation_cache.h"
#include "knowledge/workload.h"
#include "llm/simulated_llm.h"

namespace galois::core {
namespace {

const knowledge::SpiderLikeWorkload& W() {
  static const auto* w = []() {
    auto r = knowledge::SpiderLikeWorkload::Create();
    EXPECT_TRUE(r.ok());
    return new knowledge::SpiderLikeWorkload(std::move(r).value());
  }();
  return *w;
}

const catalog::TableDef& CountryDef() {
  auto def = W().catalog().GetTable("country");
  EXPECT_TRUE(def.ok());
  return *def.value();
}

/// Pointers to the named non-key columns of `def`, in the given order.
std::vector<const catalog::ColumnDef*> Cols(
    const catalog::TableDef& def, const std::vector<std::string>& names) {
  std::vector<const catalog::ColumnDef*> out;
  for (const std::string& n : names) {
    auto col = def.FindColumn(n);
    EXPECT_TRUE(col.ok()) << n;
    out.push_back(col.value());
  }
  return out;
}

/// A little key+columns relation ("country" shaped) for unit tests.
Relation MakeRelation(const catalog::TableDef& def,
                      const std::vector<std::string>& columns,
                      size_t rows) {
  Schema schema;
  schema.AddColumn(Column(def.key_column, DataType::kString, "t"));
  for (const std::string& c : columns) {
    schema.AddColumn(Column(c, DataType::kString, "t"));
  }
  Relation rel(std::move(schema));
  for (size_t r = 0; r < rows; ++r) {
    Tuple row;
    row.push_back(Value::String("key" + std::to_string(r)));
    for (const std::string& c : columns) {
      row.push_back(Value::String(c + std::to_string(r)));
    }
    rel.AddRowUnchecked(std::move(row));
  }
  return rel;
}

PredicateConjunct Conj(std::string column, std::string op, Value value,
                       bool residual_ok = true) {
  PredicateConjunct c;
  c.column = std::move(column);
  c.op = std::move(op);
  c.value = std::move(value);
  c.residual_ok = residual_ok;
  return c;
}

PredicateDescriptor Desc(std::vector<PredicateConjunct> conjuncts = {},
                         std::string pushed_column = "",
                         int64_t scan_key_limit = -1) {
  PredicateDescriptor d;
  d.conjuncts = std::move(conjuncts);
  d.pushed_column = std::move(pushed_column);
  d.scan_key_limit = scan_key_limit;
  d.Canonicalise();
  return d;
}

TEST(MaterialisationCacheTest, BaseKeySeparatesResultAffectingState) {
  const catalog::TableDef& def = CountryDef();
  ExecutionOptions opts;
  std::string base = MaterialisationCache::BaseKey(def, opts, "chatgpt");

  EXPECT_EQ(base, MaterialisationCache::BaseKey(def, opts, "chatgpt"));
  // A different model or result-affecting option must change the key.
  EXPECT_NE(base, MaterialisationCache::BaseKey(def, opts, "flan"));
  ExecutionOptions verify = opts;
  verify.verify_cells = true;
  EXPECT_NE(base, MaterialisationCache::BaseKey(def, verify, "chatgpt"));
  // Dispatch-only knobs never change results, so they share entries —
  // including prefetch_pages (speculative paging buys the same pages).
  ExecutionOptions dispatch = opts;
  dispatch.batch_prompts = true;
  dispatch.max_batch_size = 4;
  dispatch.parallel_batches = 8;
  dispatch.pipeline_phases = true;
  dispatch.prefetch_pages = 3;
  EXPECT_EQ(base, MaterialisationCache::BaseKey(def, dispatch, "chatgpt"));
}

TEST(MaterialisationCacheTest, DescriptorCanonicalisesConjunctOrder) {
  auto a = Conj("continent", "=", Value::String("Europe"));
  auto b = Conj("population", ">", Value::Int(1000));
  // WHERE a AND b == WHERE b AND a, byte-for-byte.
  EXPECT_EQ(Desc({a, b}).Encode(), Desc({b, a}).Encode());
  // Exact duplicates collapse.
  EXPECT_EQ(Desc({a, a, b}).Encode(), Desc({b, a}).Encode());
  // Pushdown choice and paging bound stay part of the identity.
  EXPECT_NE(Desc({a, b}).Encode(), Desc({a, b}, "continent").Encode());
  EXPECT_NE(Desc({a, b}).Encode(), Desc({a, b}, "", 5).Encode());
}

TEST(MaterialisationCacheTest, DescriptorEncodeDecodeRoundTrips) {
  PredicateDescriptor d =
      Desc({Conj("population", ">", Value::Int(1000)),
            Conj("continent", "=", Value::String("Europe")),
            Conj("name", "LIKE", Value::String("%land%"),
                 /*residual_ok=*/false)},
           "continent", 7);
  const std::string bytes = d.Encode();

  PredicateDescriptor back;
  ASSERT_TRUE(PredicateDescriptor::Decode(bytes, &back));
  EXPECT_EQ(back.Encode(), bytes);
  EXPECT_EQ(back.conjuncts.size(), 3u);
  EXPECT_EQ(back.pushed_column, "continent");
  EXPECT_EQ(back.scan_key_limit, 7);

  // Truncated or extended bytes are rejected, never mis-decoded.
  PredicateDescriptor junk;
  EXPECT_FALSE(PredicateDescriptor::Decode(
      std::string_view(bytes).substr(0, bytes.size() - 1), &junk));
  EXPECT_FALSE(PredicateDescriptor::Decode(bytes + "x", &junk));
  EXPECT_FALSE(PredicateDescriptor::Decode("garbage", &junk));
}

TEST(MaterialisationCacheTest, StoreKeyIsInjective) {
  // (base, descriptor) -> store key must never collide across different
  // splits of the same concatenation.
  EXPECT_NE(MaterialisationStoreKey("ab", "c"),
            MaterialisationStoreKey("a", "bc"));
  EXPECT_NE(MaterialisationStoreKey("", "abc"),
            MaterialisationStoreKey("abc", ""));
}

TEST(MaterialisationCacheTest, ExactHitRoundTripsAndRequalifies) {
  const catalog::TableDef& def = CountryDef();
  MaterialisationCache cache;
  auto cols = Cols(def, {"capital", "population"});
  cache.Insert("fp", Desc(), cols,
               MakeRelation(def, {"capital", "population"}, 3));

  MaterialisationLookupInfo info;
  auto hit = cache.Lookup("fp", Desc(), def, cols, "co", &info);
  ASSERT_TRUE(hit.has_value());
  EXPECT_TRUE(info.exact);
  EXPECT_FALSE(info.predicate_subsumed);
  EXPECT_EQ(hit->NumRows(), 3u);
  ASSERT_EQ(hit->NumColumns(), 3u);
  EXPECT_EQ(hit->schema().column(0).table, "co");
  EXPECT_EQ(hit->schema().column(1).name, "capital");
  EXPECT_EQ(hit->At(1, 1).ToString(), "capital1");
  EXPECT_EQ(cache.stats().hits, 1);
  EXPECT_EQ(cache.stats().exact_hits, 1);
  EXPECT_EQ(cache.stats().subsumption_hits, 0);
  EXPECT_EQ(cache.stats().predicate_subsumption_hits, 0);

  EXPECT_FALSE(cache.Lookup("other-fp", Desc(), def, cols, "co")
                   .has_value());
}

TEST(MaterialisationCacheTest, WiderEntryServesNarrowerByProjection) {
  const catalog::TableDef& def = CountryDef();
  MaterialisationCache cache;
  cache.Insert("fp", Desc(),
               Cols(def, {"capital", "population", "continent"}),
               MakeRelation(def, {"capital", "population", "continent"},
                            2));

  // Narrower, differently-ordered subset: served by projection.
  auto hit = cache.Lookup("fp", Desc(), def, Cols(def, {"continent"}), "x");
  ASSERT_TRUE(hit.has_value());
  ASSERT_EQ(hit->NumColumns(), 2u);
  EXPECT_EQ(hit->schema().column(1).name, "continent");
  EXPECT_EQ(hit->At(0, 1).ToString(), "continent0");
  EXPECT_EQ(cache.stats().subsumption_hits, 1);

  // A wider need than any entry misses.
  EXPECT_FALSE(
      cache.Lookup("fp", Desc(), def, Cols(def, {"capital", "gdp"}), "x")
          .has_value());
}

TEST(MaterialisationCacheTest, WidestEntryWinsAndNarrowInsertRefreshes) {
  const catalog::TableDef& def = CountryDef();
  MaterialisationCache cache;
  cache.Insert("fp", Desc(), Cols(def, {"capital"}),
               MakeRelation(def, {"capital"}, 2));
  EXPECT_EQ(cache.size(), 1u);
  // Wider insert replaces in place (still one entry)...
  cache.Insert("fp", Desc(), Cols(def, {"capital", "population"}),
               MakeRelation(def, {"capital", "population"}, 2));
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_TRUE(
      cache.Lookup("fp", Desc(), def, Cols(def, {"population"}), "t")
          .has_value());
  // ...and a narrower re-insert is a refresh, not a downgrade.
  cache.Insert("fp", Desc(), Cols(def, {"capital"}),
               MakeRelation(def, {"capital"}, 2));
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_TRUE(
      cache.Lookup("fp", Desc(), def, Cols(def, {"population"}), "t")
          .has_value());
}

TEST(MaterialisationCacheTest, EvictsLeastRecentlyUsed) {
  const catalog::TableDef& def = CountryDef();
  MaterialisationCache cache(/*max_entries=*/2);
  auto cols = Cols(def, {"capital"});
  Relation rel = MakeRelation(def, {"capital"}, 1);
  cache.Insert("a", Desc(), cols, rel);
  cache.Insert("b", Desc(), cols, rel);
  EXPECT_TRUE(
      cache.Lookup("a", Desc(), def, cols, "t").has_value());  // a is MRU
  cache.Insert("c", Desc(), cols, rel);  // evicts b
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.stats().evictions, 1);
  EXPECT_TRUE(cache.Lookup("a", Desc(), def, cols, "t").has_value());
  EXPECT_FALSE(cache.Lookup("b", Desc(), def, cols, "t").has_value());
  EXPECT_TRUE(cache.Lookup("c", Desc(), def, cols, "t").has_value());
}

// --- predicate subsumption at the cache level --------------------------

/// A key+population relation with integer populations 0, 1000, 2000, ...
Relation PopulationRelation(const catalog::TableDef& def, size_t rows) {
  Schema schema;
  schema.AddColumn(Column(def.key_column, DataType::kString, "t"));
  schema.AddColumn(Column("population", DataType::kInt64, "t"));
  Relation rel(std::move(schema));
  for (size_t r = 0; r < rows; ++r) {
    Tuple row;
    row.push_back(Value::String("key" + std::to_string(r)));
    row.push_back(Value::Int(static_cast<int64_t>(r) * 1000));
    rel.AddRowUnchecked(std::move(row));
  }
  return rel;
}

TEST(MaterialisationCacheTest, StrongerFilterServedWithResidualApplied) {
  const catalog::TableDef& def = CountryDef();
  MaterialisationCache cache;
  auto cols = Cols(def, {"population"});
  // Cached under population > 1000: rows 2000..5000.
  Relation cached = PopulationRelation(def, 6);
  cache.Insert("fp", Desc({Conj("population", ">", Value::Int(1000))}),
               cols, cached);

  // Query asks population > 3000 — strictly stronger, so the entry's
  // rows are a superset; the residual conjunct drops rows <= 3000.
  MaterialisationLookupInfo info;
  auto hit = cache.Lookup(
      "fp", Desc({Conj("population", ">", Value::Int(3000))}), def, cols,
      "t", &info);
  ASSERT_TRUE(hit.has_value());
  EXPECT_TRUE(info.hit);
  EXPECT_FALSE(info.exact);
  EXPECT_TRUE(info.predicate_subsumed);
  EXPECT_EQ(info.residual_conjuncts, 1);
  EXPECT_EQ(hit->NumRows(), 2u);  // 4000 and 5000
  for (size_t r = 0; r < hit->NumRows(); ++r) {
    EXPECT_GT(hit->At(r, 1).int_value(), 3000);
  }
  EXPECT_EQ(cache.stats().predicate_subsumption_hits, 1);
}

TEST(MaterialisationCacheTest, IdenticalConjunctNeedsNoResidualColumn) {
  const catalog::TableDef& def = CountryDef();
  MaterialisationCache cache;
  // The entry materialised only `capital`; the filter column
  // (continent) is NOT among its columns. An identical conjunct is
  // still served — nothing needs re-checking.
  auto cols = Cols(def, {"capital"});
  auto d = Desc({Conj("continent", "=", Value::String("Europe"))});
  cache.Insert("fp", d, cols, MakeRelation(def, {"capital"}, 2));

  MaterialisationLookupInfo info;
  auto hit = cache.Lookup("fp", d, def, cols, "t", &info);
  ASSERT_TRUE(hit.has_value());
  EXPECT_TRUE(info.exact);
  EXPECT_EQ(info.residual_conjuncts, 0);
}

TEST(MaterialisationCacheTest, ResidualNeedsItsColumnMaterialised) {
  const catalog::TableDef& def = CountryDef();
  MaterialisationCache cache;
  // Entry holds only `capital`; the query's extra conjunct is on
  // population, whose values are absent — the entry cannot legally
  // serve, so the lookup misses.
  auto cols = Cols(def, {"capital"});
  cache.Insert("fp", Desc(), cols, MakeRelation(def, {"capital"}, 2));

  auto hit = cache.Lookup(
      "fp", Desc({Conj("population", ">", Value::Int(1000))}), def, cols,
      "t");
  EXPECT_FALSE(hit.has_value());
}

TEST(MaterialisationCacheTest, LikeConjunctIsNeverResiduallyChecked) {
  const catalog::TableDef& def = CountryDef();
  MaterialisationCache cache;
  auto cols = Cols(def, {"capital"});
  cache.Insert("fp", Desc(), cols, MakeRelation(def, {"capital"}, 2));

  // The unfiltered entry is a superset, but LIKE has no engine-side
  // mirror of the model's pattern semantics (residual_ok=false), so the
  // entry must not serve it.
  auto hit = cache.Lookup(
      "fp",
      Desc({Conj("capital", "LIKE", Value::String("%a%"),
                 /*residual_ok=*/false)}),
      def, cols, "t");
  EXPECT_FALSE(hit.has_value());
}

TEST(MaterialisationCacheTest, StringConjunctsImplyOnlyIdentically) {
  const catalog::TableDef& def = CountryDef();
  MaterialisationCache cache;
  auto cols = Cols(def, {"capital"});
  // Cached under continent != 'Asia'. A query with continent = 'Europe'
  // would be row-wise stronger under byte comparison, but string
  // equality is case-insensitive model-side, so intervals over string
  // literals are unsound — must miss, not subsume.
  cache.Insert("fp",
               Desc({Conj("continent", "!=", Value::String("Asia"))}),
               cols, MakeRelation(def, {"capital"}, 2));
  auto hit = cache.Lookup(
      "fp", Desc({Conj("continent", "=", Value::String("Europe"))}), def,
      cols, "t");
  EXPECT_FALSE(hit.has_value());
}

TEST(MaterialisationCacheTest, BoundedPrefixNeverServesBroaderQueries) {
  const catalog::TableDef& def = CountryDef();
  MaterialisationCache cache;
  auto cols = Cols(def, {"population"});
  // Cached with scan_key_limit=3: a *prefix* of the table, not the
  // filtered table. It may serve only a descriptor-identical query.
  auto bounded = Desc({Conj("population", ">", Value::Int(1000))}, "", 3);
  cache.Insert("fp", bounded, cols, PopulationRelation(def, 3));

  EXPECT_TRUE(cache.Lookup("fp", bounded, def, cols, "t").has_value());
  // Stronger filter, no bound: the prefix is NOT a superset of the
  // unbounded result — must miss.
  auto hit = cache.Lookup(
      "fp", Desc({Conj("population", ">", Value::Int(3000))}), def, cols,
      "t");
  EXPECT_FALSE(hit.has_value());

  // The other direction is sound: an unbounded entry may serve a
  // bounded query (the relational tail re-applies the LIMIT).
  MaterialisationCache cache2;
  cache2.Insert("fp", Desc({Conj("population", ">", Value::Int(1000))}),
                cols, PopulationRelation(def, 6));
  MaterialisationLookupInfo info;
  auto bounded_hit = cache2.Lookup(
      "fp", Desc({Conj("population", ">", Value::Int(1000))}, "", 3), def,
      cols, "t", &info);
  ASSERT_TRUE(bounded_hit.has_value());
  EXPECT_TRUE(info.predicate_subsumed);
}

TEST(MaterialisationCacheTest, RangeContainmentAcrossOperators) {
  const catalog::TableDef& def = CountryDef();
  MaterialisationCache cache;
  auto cols = Cols(def, {"population"});
  // Cached under population >= 1000.
  cache.Insert("fp", Desc({Conj("population", ">=", Value::Int(1000))}),
               cols, PopulationRelation(def, 6));

  // 2000 <= population <= 4000 lies inside [1000, inf): subsumed, both
  // conjuncts re-checked in memory.
  MaterialisationLookupInfo info;
  auto hit = cache.Lookup(
      "fp",
      Desc({Conj("population", ">=", Value::Int(2000)),
            Conj("population", "<=", Value::Int(4000))}),
      def, cols, "t", &info);
  ASSERT_TRUE(hit.has_value());
  EXPECT_TRUE(info.predicate_subsumed);
  EXPECT_EQ(hit->NumRows(), 3u);  // 2000, 3000, 4000

  // population > 500 is weaker than the cached filter: its rows are NOT
  // a subset of the entry — must miss.
  EXPECT_FALSE(cache.Lookup(
                        "fp",
                        Desc({Conj("population", ">", Value::Int(500))}),
                        def, cols, "t")
                   .has_value());
}

// --- executor integration ---------------------------------------------

class MaterialisationCacheExecutorTest : public ::testing::Test {
 protected:
  MaterialisationCacheExecutorTest()
      : model_(&W().kb(), llm::ModelProfile::ChatGpt(), &W().catalog(),
               7) {}
  llm::SimulatedLlm model_;
  MaterialisationCache cache_;
};

TEST_F(MaterialisationCacheExecutorTest, WarmRerunIsFreeAndIdentical) {
  GaloisExecutor galois(&model_, &W().catalog());
  galois.set_materialisation_cache(&cache_);
  const char* sql =
      "SELECT name, capital FROM country WHERE continent = 'Europe'";
  auto cold = galois.RunSql(sql);
  ASSERT_TRUE(cold.ok());
  EXPECT_GT(cold->cost.num_prompts, 0);
  EXPECT_EQ(cold->table_cache_lookups, 1);
  EXPECT_EQ(cold->table_cache_hits, 0);

  auto warm = galois.RunSql(sql);
  ASSERT_TRUE(warm.ok());
  EXPECT_TRUE(cold->relation.SameContents(warm->relation));
  EXPECT_EQ(warm->cost.num_prompts, 0);
  EXPECT_EQ(warm->table_cache_hits, 1);
  EXPECT_EQ(warm->table_cache_exact_hits, 1);
  EXPECT_EQ(warm->table_cache_subsumption_hits, 0);
}

TEST_F(MaterialisationCacheExecutorTest,
       NarrowerQueryAndNewAliasServedBySubsumption) {
  GaloisExecutor galois(&model_, &W().catalog());
  galois.set_materialisation_cache(&cache_);
  auto wide = galois.RunSql(
      "SELECT name, capital, population FROM country "
      "WHERE continent = 'Europe'");
  ASSERT_TRUE(wide.ok());

  // Same key pair, subset of the columns, different alias: zero
  // prompts, correctly requalified schema.
  auto narrow = galois.RunSql(
      "SELECT c.capital FROM country c WHERE c.continent = 'Europe'");
  ASSERT_TRUE(narrow.ok());
  EXPECT_EQ(narrow->cost.num_prompts, 0);
  EXPECT_EQ(narrow->table_cache_hits, 1);
  EXPECT_EQ(narrow->relation.NumRows(), wide->relation.NumRows());
  EXPECT_EQ(cache_.stats().subsumption_hits, 1);

  // The cached projection equals a fresh materialisation.
  llm::SimulatedLlm fresh(&W().kb(), llm::ModelProfile::ChatGpt(),
                          &W().catalog(), 7);
  GaloisExecutor uncached(&fresh, &W().catalog());
  auto expect = uncached.ExecuteSql(
      "SELECT c.capital FROM country c WHERE c.continent = 'Europe'");
  ASSERT_TRUE(expect.ok());
  EXPECT_TRUE(narrow->relation.SameContents(*expect));
}

TEST_F(MaterialisationCacheExecutorTest, DisjointFilterMisses) {
  GaloisExecutor galois(&model_, &W().catalog());
  galois.set_materialisation_cache(&cache_);
  ASSERT_TRUE(galois
                  .ExecuteSql("SELECT name, capital FROM country "
                              "WHERE continent = 'Europe'")
                  .ok());
  // A different equality literal is not implied by the cached one (and
  // string conjuncts only imply identically), so this is a miss.
  auto other = galois.RunSql(
      "SELECT name, capital FROM country WHERE continent = 'Asia'");
  ASSERT_TRUE(other.ok());
  EXPECT_EQ(other->table_cache_hits, 0);
  EXPECT_GT(other->cost.num_prompts, 0);
}

TEST_F(MaterialisationCacheExecutorTest, ProvenanceRunsBypassTheCache) {
  ExecutionOptions opts;
  opts.record_provenance = true;
  GaloisExecutor galois(&model_, &W().catalog(), opts);
  galois.set_materialisation_cache(&cache_);
  const char* sql = "SELECT name, capital FROM country";
  ASSERT_TRUE(galois.RunSql(sql).ok());
  auto second = galois.RunSql(sql);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->table_cache_lookups, 0);
  EXPECT_EQ(cache_.size(), 0u);
  // The trace is populated on every run — nothing was served from cache.
  EXPECT_FALSE(second->trace.cells.empty());
}

}  // namespace
}  // namespace galois::core
