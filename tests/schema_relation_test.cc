// Unit tests for types/schema and types/relation.

#include <gtest/gtest.h>

#include "types/relation.h"
#include "types/schema.h"

namespace galois {
namespace {

Schema MakeSchema() {
  return Schema({Column("name", DataType::kString, "c"),
                 Column("population", DataType::kInt64, "c"),
                 Column("gdp", DataType::kDouble, "c")});
}

TEST(SchemaTest, ResolveUnqualified) {
  Schema s = MakeSchema();
  EXPECT_EQ(s.Resolve("name").value(), 0u);
  EXPECT_EQ(s.Resolve("POPULATION").value(), 1u);
  EXPECT_FALSE(s.Resolve("missing").ok());
}

TEST(SchemaTest, ResolveQualified) {
  Schema s = MakeSchema();
  EXPECT_EQ(s.Resolve("c.gdp").value(), 2u);
  EXPECT_EQ(s.ResolveQualified("C", "Name").value(), 0u);
  EXPECT_FALSE(s.ResolveQualified("x", "name").ok());
}

TEST(SchemaTest, AmbiguityDetected) {
  Schema s({Column("name", DataType::kString, "a"),
            Column("name", DataType::kString, "b")});
  EXPECT_FALSE(s.Resolve("name").ok());
  EXPECT_EQ(s.Resolve("a.name").value(), 0u);
  EXPECT_EQ(s.Resolve("b.name").value(), 1u);
}

TEST(SchemaTest, Concat) {
  Schema a({Column("x", DataType::kInt64, "l")});
  Schema b({Column("y", DataType::kInt64, "r")});
  Schema c = Schema::Concat(a, b);
  ASSERT_EQ(c.size(), 2u);
  EXPECT_EQ(c.column(0).name, "x");
  EXPECT_EQ(c.column(1).name, "y");
}

TEST(SchemaTest, QualifiedName) {
  EXPECT_EQ(Column("name", DataType::kString, "c").QualifiedName(),
            "c.name");
  EXPECT_EQ(Column("name", DataType::kString).QualifiedName(), "name");
}

TEST(SchemaTest, ToStringMentionsTypes) {
  std::string s = MakeSchema().ToString();
  EXPECT_NE(s.find("VARCHAR"), std::string::npos);
  EXPECT_NE(s.find("INT"), std::string::npos);
  EXPECT_NE(s.find("DOUBLE"), std::string::npos);
}

Relation MakeRelation() {
  Relation r(MakeSchema());
  r.AddRowUnchecked({Value::String("Italy"), Value::Int(59),
                     Value::Double(2.1)});
  r.AddRowUnchecked({Value::String("France"), Value::Int(67),
                     Value::Double(2.9)});
  r.AddRowUnchecked({Value::String("Austria"), Value::Int(9),
                     Value::Double(0.5)});
  return r;
}

TEST(RelationTest, AddRowChecksArity) {
  Relation r(MakeSchema());
  EXPECT_TRUE(r.AddRow({Value::String("x"), Value::Int(1),
                        Value::Double(1.0)})
                  .ok());
  EXPECT_FALSE(r.AddRow({Value::String("x")}).ok());
  EXPECT_EQ(r.NumRows(), 1u);
}

TEST(RelationTest, ColumnValues) {
  Relation r = MakeRelation();
  std::vector<Value> names = r.ColumnValues(0);
  ASSERT_EQ(names.size(), 3u);
  EXPECT_EQ(names[0].string_value(), "Italy");
}

TEST(RelationTest, SortRowsCanonical) {
  Relation r = MakeRelation();
  r.SortRows();
  EXPECT_EQ(r.At(0, 0).string_value(), "Austria");
  EXPECT_EQ(r.At(1, 0).string_value(), "France");
  EXPECT_EQ(r.At(2, 0).string_value(), "Italy");
}

TEST(RelationTest, DedupRows) {
  Relation r(MakeSchema());
  for (int i = 0; i < 3; ++i) {
    r.AddRowUnchecked({Value::String("dup"), Value::Int(1),
                       Value::Double(1.0)});
  }
  r.AddRowUnchecked({Value::String("uniq"), Value::Int(2),
                     Value::Double(2.0)});
  r.DedupRows();
  EXPECT_EQ(r.NumRows(), 2u);
}

TEST(RelationTest, SameContentsIgnoresOrder) {
  Relation a = MakeRelation();
  Relation b = MakeRelation();
  std::reverse(b.mutable_rows()->begin(), b.mutable_rows()->end());
  EXPECT_TRUE(a.SameContents(b));
  b.AddRowUnchecked({Value::String("x"), Value::Int(0),
                     Value::Double(0.0)});
  EXPECT_FALSE(a.SameContents(b));
}

TEST(RelationTest, SameContentsDetectsCellDifference) {
  Relation a = MakeRelation();
  Relation b = MakeRelation();
  (*b.mutable_rows())[0][1] = Value::Int(999);
  EXPECT_FALSE(a.SameContents(b));
}

TEST(RelationTest, PrettyStringContainsHeaderAndRows) {
  Relation r = MakeRelation();
  std::string s = r.ToPrettyString();
  EXPECT_NE(s.find("c.name"), std::string::npos);
  EXPECT_NE(s.find("Italy"), std::string::npos);
  EXPECT_NE(s.find("3 row(s)"), std::string::npos);
}

TEST(RelationTest, PrettyStringTruncates) {
  Relation r(Schema({Column("n", DataType::kInt64)}));
  for (int i = 0; i < 100; ++i) r.AddRowUnchecked({Value::Int(i)});
  std::string s = r.ToPrettyString(/*max_rows=*/10);
  EXPECT_NE(s.find("(90 more rows)"), std::string::npos);
}

TEST(RelationTest, CsvFormat) {
  Relation r = MakeRelation();
  std::string csv = r.ToCsv();
  EXPECT_NE(csv.find("c.name|c.population|c.gdp"), std::string::npos);
  EXPECT_NE(csv.find("Italy|59|2.1"), std::string::npos);
}

TEST(RelationTest, EmptyRelation) {
  Relation r(MakeSchema());
  EXPECT_TRUE(r.empty());
  EXPECT_EQ(r.NumRows(), 0u);
  EXPECT_EQ(r.NumColumns(), 3u);
  r.DedupRows();  // no crash on empty
  EXPECT_TRUE(r.SameContents(Relation(MakeSchema())));
}

}  // namespace
}  // namespace galois
