// Edge-case tests for the relational engine and the shared SPJA pipeline:
// degenerate inputs, NULL-heavy data, loose GROUP BY, ORDER BY corners.

#include <gtest/gtest.h>

#include "engine/executor.h"
#include "knowledge/workload.h"
#include "sql/parser.h"

namespace galois::engine {
namespace {

const knowledge::SpiderLikeWorkload& W() {
  static const auto* w = []() {
    auto r = knowledge::SpiderLikeWorkload::Create();
    EXPECT_TRUE(r.ok());
    return new knowledge::SpiderLikeWorkload(std::move(r).value());
  }();
  return *w;
}

Relation RunSql(const std::string& sql) {
  auto r = ExecuteSql(sql, W().catalog());
  EXPECT_TRUE(r.ok()) << sql << " -> " << r.status();
  return r.value_or(Relation());
}

TEST(EngineEdgeTest, LimitZero) {
  EXPECT_EQ(RunSql("SELECT name FROM country LIMIT 0").NumRows(), 0u);
}

TEST(EngineEdgeTest, LimitBeyondCardinality) {
  Relation all = RunSql("SELECT name FROM country");
  Relation limited = RunSql("SELECT name FROM country LIMIT 100000");
  EXPECT_EQ(all.NumRows(), limited.NumRows());
}

TEST(EngineEdgeTest, WhereMatchesNothing) {
  Relation r = RunSql("SELECT name FROM country WHERE population < 0");
  EXPECT_EQ(r.NumRows(), 0u);
}

TEST(EngineEdgeTest, ScalarAggregateOverEmptySelection) {
  Relation count =
      RunSql("SELECT COUNT(*) FROM country WHERE population < 0");
  ASSERT_EQ(count.NumRows(), 1u);
  EXPECT_EQ(count.At(0, 0).int_value(), 0);
  Relation avg =
      RunSql("SELECT AVG(population) FROM country WHERE population < 0");
  ASSERT_EQ(avg.NumRows(), 1u);
  EXPECT_TRUE(avg.At(0, 0).is_null());
}

TEST(EngineEdgeTest, GroupByOverEmptySelectionYieldsNoRows) {
  Relation r = RunSql(
      "SELECT continent, COUNT(*) FROM country WHERE population < 0 "
      "GROUP BY continent");
  EXPECT_EQ(r.NumRows(), 0u);
}

TEST(EngineEdgeTest, HavingWithoutGroupBy) {
  // Scalar aggregation with HAVING acts as a post-filter on the single
  // group.
  Relation keep =
      RunSql("SELECT COUNT(*) FROM country HAVING COUNT(*) > 10");
  EXPECT_EQ(keep.NumRows(), 1u);
  Relation drop =
      RunSql("SELECT COUNT(*) FROM country HAVING COUNT(*) > 10000");
  EXPECT_EQ(drop.NumRows(), 0u);
}

TEST(EngineEdgeTest, OrderByMultipleKeysMixedDirections) {
  Relation r = RunSql(
      "SELECT continent, name FROM country "
      "ORDER BY continent ASC, name DESC");
  ASSERT_GT(r.NumRows(), 2u);
  for (size_t i = 1; i < r.NumRows(); ++i) {
    int cont = r.At(i - 1, 0).Compare(r.At(i, 0));
    EXPECT_LE(cont, 0);
    if (cont == 0) {
      EXPECT_GE(r.At(i - 1, 1).Compare(r.At(i, 1)), 0);
    }
  }
}

TEST(EngineEdgeTest, OrderByExpressionNotInSelect) {
  Relation r = RunSql(
      "SELECT name FROM country ORDER BY population DESC LIMIT 1");
  Relation max = RunSql("SELECT MAX(population) FROM country");
  Relation check = RunSql(
      "SELECT name FROM country WHERE population = " +
      max.At(0, 0).ToString());
  ASSERT_EQ(r.NumRows(), 1u);
  ASSERT_EQ(check.NumRows(), 1u);
  EXPECT_EQ(r.At(0, 0), check.At(0, 0));
}

TEST(EngineEdgeTest, DistinctOnMultipleColumns) {
  Relation r = RunSql("SELECT DISTINCT continent, language FROM country");
  Relation all = RunSql("SELECT continent, language FROM country");
  EXPECT_LT(r.NumRows(), all.NumRows());
  Relation again = RunSql(
      "SELECT DISTINCT continent, language FROM country");
  EXPECT_TRUE(r.SameContents(again));
}

TEST(EngineEdgeTest, SelfJoinWithAliases) {
  // Countries sharing a continent with Italy (including Italy).
  Relation r = RunSql(
      "SELECT b.name FROM country a, country b "
      "WHERE a.name = 'Italy' AND a.continent = b.continent");
  Relation europe =
      RunSql("SELECT name FROM country WHERE continent = 'Europe'");
  EXPECT_EQ(r.NumRows(), europe.NumRows());
}

TEST(EngineEdgeTest, BetweenInWhere) {
  Relation r = RunSql(
      "SELECT name FROM airline WHERE foundedYear BETWEEN 1920 AND 1930");
  for (const Tuple& row : r.rows()) {
    (void)row;
  }
  Relation manual = RunSql(
      "SELECT name FROM airline WHERE foundedYear >= 1920 AND "
      "foundedYear <= 1930");
  EXPECT_TRUE(r.SameContents(manual));
}

TEST(EngineEdgeTest, InListInWhere) {
  Relation r = RunSql(
      "SELECT name FROM country WHERE continent IN ('Oceania', 'Africa')");
  Relation manual = RunSql(
      "SELECT name FROM country WHERE continent = 'Oceania' OR "
      "continent = 'Africa'");
  EXPECT_TRUE(r.SameContents(manual));
}

TEST(EngineEdgeTest, LikeInWhere) {
  Relation r =
      RunSql("SELECT name FROM country WHERE name LIKE 'United%'");
  EXPECT_EQ(r.NumRows(), 2u);  // United States, United Kingdom
}

TEST(EngineEdgeTest, NotPredicate) {
  Relation yes =
      RunSql("SELECT name FROM country WHERE continent = 'Europe'");
  Relation no =
      RunSql("SELECT name FROM country WHERE NOT continent = 'Europe'");
  Relation all = RunSql("SELECT name FROM country");
  EXPECT_EQ(yes.NumRows() + no.NumRows(), all.NumRows());
}

TEST(EngineEdgeTest, ArithmeticInWhere) {
  Relation r = RunSql(
      "SELECT name FROM country WHERE population / 1000000 > 200");
  Relation manual =
      RunSql("SELECT name FROM country WHERE population > 200000000");
  EXPECT_TRUE(r.SameContents(manual));
}

TEST(EngineEdgeTest, LooseGroupBySelectsFunctionallyDependentColumn) {
  // Selecting gdp while grouping by name is legal here via loose group
  // semantics (the paper's intro query shape).
  Relation r = RunSql(
      "SELECT name, gdp, COUNT(*) FROM country GROUP BY name");
  Relation plain = RunSql("SELECT name, gdp FROM country");
  EXPECT_EQ(r.NumRows(), plain.NumRows());
  for (const Tuple& row : r.rows()) {
    EXPECT_EQ(row[2].int_value(), 1);
  }
}

TEST(EngineEdgeTest, AggregateOfExpression) {
  Relation r = RunSql("SELECT AVG(population / 1000000) FROM country");
  Relation manual = RunSql("SELECT AVG(population) FROM country");
  ASSERT_EQ(r.NumRows(), 1u);
  EXPECT_NEAR(r.At(0, 0).double_value() * 1e6,
              manual.At(0, 0).double_value(), 1.0);
}

TEST(EngineEdgeTest, ExpressionOverAggregates) {
  Relation r = RunSql(
      "SELECT MAX(population) - MIN(population) FROM country");
  Relation parts =
      RunSql("SELECT MAX(population), MIN(population) FROM country");
  ASSERT_EQ(r.NumRows(), 1u);
  EXPECT_DOUBLE_EQ(
      r.At(0, 0).AsDouble().value(),
      parts.At(0, 0).AsDouble().value() -
          parts.At(0, 1).AsDouble().value());
}

TEST(EngineEdgeTest, SameAggregateTwiceIsConsistent) {
  Relation r =
      RunSql("SELECT COUNT(*), COUNT(*) FROM country");
  ASSERT_EQ(r.NumRows(), 1u);
  EXPECT_EQ(r.At(0, 0), r.At(0, 1));
}

TEST(EngineEdgeTest, JoinOnNumericColumns) {
  // Self-join on an integer attribute: airlines founded the same year.
  Relation r = RunSql(
      "SELECT a.name, b.name FROM airline a, airline b "
      "WHERE a.foundedYear = b.foundedYear AND a.name != b.name");
  for (const Tuple& row : r.rows()) {
    EXPECT_NE(row[0], row[1]);
  }
}

TEST(EngineEdgeTest, ColumnAliasVisibleInOrderByOnly) {
  // Aliases are not visible in WHERE (standard SQL).
  auto bad = ExecuteSql(
      "SELECT population AS p FROM country WHERE p > 5", W().catalog());
  EXPECT_FALSE(bad.ok());
}

TEST(EngineEdgeTest, DuplicateAliasAmbiguity) {
  auto r = ExecuteSql(
      "SELECT name FROM country c, city c WHERE c.name = 'x'",
      W().catalog());
  EXPECT_FALSE(r.ok());
}

TEST(EngineEdgeTest, QualifiedStarWithJoin) {
  Relation r = RunSql(
      "SELECT la.* FROM country co, language la "
      "WHERE co.language = la.name AND co.name = 'Japan'");
  EXPECT_EQ(r.NumColumns(), 3u);  // language columns only
  ASSERT_EQ(r.NumRows(), 1u);
  EXPECT_EQ(r.At(0, 0).string_value(), "Japanese");
}

TEST(EngineEdgeTest, CaseInsensitiveTableAndColumnNames) {
  Relation a = RunSql("SELECT NAME from COUNTRY where CONTINENT = 'Asia'");
  Relation b = RunSql("SELECT name FROM country WHERE continent = 'Asia'");
  EXPECT_TRUE(a.SameContents(b));
}

TEST(EngineEdgeTest, IsNullFilterOnDbTable) {
  Relation r = RunSql(
      "SELECT name FROM Employees WHERE countryCode IS NOT NULL");
  Relation all = RunSql("SELECT name FROM Employees");
  EXPECT_EQ(r.NumRows(), all.NumRows());
  Relation none =
      RunSql("SELECT name FROM Employees WHERE countryCode IS NULL");
  EXPECT_EQ(none.NumRows(), 0u);
}

}  // namespace
}  // namespace galois::engine
