// Tests for the QA baselines (T_M, T^C_M) and the text->records
// post-processing.

#include <gtest/gtest.h>

#include "engine/executor.h"
#include "knowledge/workload.h"
#include "llm/simulated_llm.h"
#include "qa/qa_baseline.h"
#include "qa/text_records.h"

namespace galois::qa {
namespace {

const knowledge::SpiderLikeWorkload& W() {
  static const auto* w = []() {
    auto r = knowledge::SpiderLikeWorkload::Create();
    EXPECT_TRUE(r.ok());
    return new knowledge::SpiderLikeWorkload(std::move(r).value());
  }();
  return *w;
}

TEST(TextRecordsTest, StripChainOfThought) {
  EXPECT_EQ(StripChainOfThought("Step 1 blah.\nFinal answer:\n42"), "42");
  EXPECT_EQ(StripChainOfThought("plain answer"), "plain answer");
}

Schema OneCol() {
  return Schema({Column("name", DataType::kString)});
}

Schema TwoCol() {
  return Schema({Column("name", DataType::kString),
                 Column("population", DataType::kInt64)});
}

TEST(TextRecordsTest, SingleColumnCommaList) {
  auto r = TextToRelation("Rome, Paris, Berlin", OneCol());
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->NumRows(), 3u);
}

TEST(TextRecordsTest, SingleColumnBullets) {
  auto r = TextToRelation("- Rome\n- Paris", OneCol());
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->NumRows(), 2u);
}

TEST(TextRecordsTest, MultiColumnColonFields) {
  auto r = TextToRelation("- Rome: 2.8M\n- Paris: 2,100,000", TwoCol());
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->NumRows(), 2u);
  r->SortRows();
  EXPECT_EQ(r->At(0, 0).string_value(), "Paris");
  EXPECT_EQ(r->At(0, 1).int_value(), 2100000);
  EXPECT_EQ(r->At(1, 1).int_value(), 2800000);
}

TEST(TextRecordsTest, MissingFieldsPaddedWithNull) {
  auto r = TextToRelation("- Rome", TwoCol());
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->NumRows(), 1u);
  EXPECT_TRUE(r->At(0, 1).is_null());
}

TEST(TextRecordsTest, OverflowFieldsMergedIntoLast) {
  Schema two({Column("name", DataType::kString),
              Column("note", DataType::kString)});
  auto r = TextToRelation("- Rome: nice: old", two);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->NumRows(), 1u);
  EXPECT_EQ(r->At(0, 1).string_value(), "nice:old");
}

TEST(TextRecordsTest, UnknownYieldsEmptyRelation) {
  auto r = TextToRelation("Unknown", OneCol());
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->NumRows(), 0u);
}

TEST(TextRecordsTest, DuplicatesRemoved) {
  auto r = TextToRelation("Rome, Rome, Rome, Paris", OneCol());
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->NumRows(), 2u);
}

TEST(TextRecordsTest, AllNullRowsDropped) {
  auto r = TextToRelation("- Unknown\n- Rome", OneCol());
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->NumRows(), 1u);
}

TEST(TextRecordsTest, NumericColumnRunsDomainChecks) {
  Schema year({Column("foundedYear", DataType::kInt64)});
  auto r = TextToRelation("1936, 99999", year);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->NumRows(), 1u);  // 99999 rejected by the year domain
  EXPECT_EQ(r->At(0, 0).int_value(), 1936);
}

class QaBaselineTest : public ::testing::Test {
 protected:
  QaBaselineTest()
      : model_(&W().kb(), llm::ModelProfile::ChatGpt(), &W().catalog(),
               7) {}

  llm::SimulatedLlm model_;
};

TEST_F(QaBaselineTest, NlQuestionProducesSchemaShapedRelation) {
  const knowledge::QuerySpec* spec = W().GetQuery(1).value();
  auto rd = engine::ExecuteSql(spec->sql, W().catalog());
  ASSERT_TRUE(rd.ok());
  auto result = RunNlQuestion(&model_, *spec, rd->schema());
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_FALSE(result->raw_answer.empty());
  EXPECT_EQ(result->relation.NumColumns(), rd->NumColumns());
}

TEST_F(QaBaselineTest, ChainOfThoughtStripsPreamble) {
  const knowledge::QuerySpec* spec = W().GetQuery(1).value();
  auto rd = engine::ExecuteSql(spec->sql, W().catalog());
  ASSERT_TRUE(rd.ok());
  auto result = RunChainOfThought(&model_, *spec, rd->schema());
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_NE(result->raw_answer.find("Step 1"), std::string::npos);
  // The parsed relation must not contain the reasoning preamble.
  for (const Tuple& row : result->relation.rows()) {
    if (row[0].type() == DataType::kString) {
      EXPECT_EQ(row[0].string_value().find("Step 1"), std::string::npos);
    }
  }
}

TEST_F(QaBaselineTest, QaRecallIsPartial) {
  // The one-shot NL answer covers only part of a large result list.
  const knowledge::QuerySpec* spec = W().GetQuery(5).value();  // big list
  auto rd = engine::ExecuteSql(spec->sql, W().catalog());
  ASSERT_TRUE(rd.ok());
  auto result = RunNlQuestion(&model_, *spec, rd->schema());
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->relation.NumRows(), 0u);
  EXPECT_LT(result->relation.NumRows(), rd->NumRows());
}

TEST_F(QaBaselineTest, DeterministicAcrossRuns) {
  const knowledge::QuerySpec* spec = W().GetQuery(9).value();
  auto rd = engine::ExecuteSql(spec->sql, W().catalog());
  ASSERT_TRUE(rd.ok());
  auto a = RunNlQuestion(&model_, *spec, rd->schema());
  auto b = RunNlQuestion(&model_, *spec, rd->schema());
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->raw_answer, b->raw_answer);
  EXPECT_TRUE(a->relation.SameContents(b->relation));
}

TEST_F(QaBaselineTest, BaselineConsumesOnePrompt) {
  const knowledge::QuerySpec* spec = W().GetQuery(3).value();
  auto rd = engine::ExecuteSql(spec->sql, W().catalog());
  ASSERT_TRUE(rd.ok());
  model_.ResetCost();
  ASSERT_TRUE(RunNlQuestion(&model_, *spec, rd->schema()).ok());
  EXPECT_EQ(model_.cost().num_prompts, 1);
}

}  // namespace
}  // namespace galois::qa
