// Unit tests for common/: Status, Result, strings, Rng.

#include <gtest/gtest.h>

#include <set>

#include "common/result.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/strings.h"

namespace galois {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::ParseError("bad token");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kParseError);
  EXPECT_EQ(s.message(), "bad token");
  EXPECT_EQ(s.ToString(), "ParseError: bad token");
}

TEST(StatusTest, EveryCodeHasAName) {
  for (StatusCode code :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kNotFound,
        StatusCode::kAlreadyExists, StatusCode::kOutOfRange,
        StatusCode::kUnimplemented, StatusCode::kInternal,
        StatusCode::kParseError, StatusCode::kBindError,
        StatusCode::kTypeError, StatusCode::kExecutionError,
        StatusCode::kLlmError}) {
    EXPECT_STRNE(StatusCodeName(code), "Unknown");
  }
}

TEST(StatusTest, Equality) {
  EXPECT_EQ(Status::OK(), Status());
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("x"));
  EXPECT_FALSE(Status::NotFound("x") == Status::NotFound("y"));
}

Result<int> ParsePositive(int v) {
  if (v <= 0) return Status::InvalidArgument("not positive");
  return v;
}

Result<int> Doubled(int v) {
  GALOIS_ASSIGN_OR_RETURN(int x, ParsePositive(v));
  return x * 2;
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("gone");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(ResultTest, AssignOrReturnPropagates) {
  EXPECT_EQ(Doubled(21).value(), 42);
  EXPECT_FALSE(Doubled(-1).ok());
  EXPECT_EQ(Doubled(-1).status().code(), StatusCode::kInvalidArgument);
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(7);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 7);
}

TEST(StringsTest, CaseConversion) {
  EXPECT_EQ(ToLower("MiXeD 42!"), "mixed 42!");
  EXPECT_EQ(ToUpper("MiXeD 42!"), "MIXED 42!");
}

TEST(StringsTest, Trim) {
  EXPECT_EQ(Trim("  hello \t\n"), "hello");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim("x"), "x");
}

TEST(StringsTest, SplitBasics) {
  EXPECT_EQ(Split("a,b,c", ','),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(Split("a, b , c", ',', /*trim=*/true),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(Split("a,,c", ',', false, /*skip_empty=*/true),
            (std::vector<std::string>{"a", "c"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(Split("", ',', false, true), (std::vector<std::string>{}));
}

TEST(StringsTest, JoinRoundTrip) {
  std::vector<std::string> parts{"x", "y", "z"};
  EXPECT_EQ(Join(parts, ", "), "x, y, z");
  EXPECT_EQ(Join({}, ", "), "");
  EXPECT_EQ(Join({"solo"}, ", "), "solo");
}

TEST(StringsTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("galois", "gal"));
  EXPECT_FALSE(StartsWith("gal", "galois"));
  EXPECT_TRUE(EndsWith("galois", "ois"));
  EXPECT_FALSE(EndsWith("ois", "galois"));
  EXPECT_TRUE(StartsWith("x", ""));
  EXPECT_TRUE(EndsWith("x", ""));
}

TEST(StringsTest, EqualsIgnoreCase) {
  EXPECT_TRUE(EqualsIgnoreCase("SELECT", "select"));
  EXPECT_FALSE(EqualsIgnoreCase("SELECT", "selec"));
  EXPECT_TRUE(EqualsIgnoreCase("", ""));
}

TEST(StringsTest, ContainsIgnoreCase) {
  EXPECT_TRUE(ContainsIgnoreCase("independenceYear", "YEAR"));
  EXPECT_FALSE(ContainsIgnoreCase("code", "year"));
  EXPECT_TRUE(ContainsIgnoreCase("anything", ""));
}

TEST(StringsTest, ReplaceAll) {
  EXPECT_EQ(ReplaceAll("1,234,567", ",", ""), "1234567");
  EXPECT_EQ(ReplaceAll("aaa", "a", "bb"), "bbbbbb");
  EXPECT_EQ(ReplaceAll("none", "x", "y"), "none");
}

TEST(StringsTest, SplitIdentifierWords) {
  EXPECT_EQ(SplitIdentifierWords("cityMayor"),
            (std::vector<std::string>{"city", "mayor"}));
  EXPECT_EQ(SplitIdentifierWords("birth_date"),
            (std::vector<std::string>{"birth", "date"}));
  EXPECT_EQ(SplitIdentifierWords("GDP"),
            (std::vector<std::string>{"gdp"}));
  EXPECT_EQ(SplitIdentifierWords("independenceYear"),
            (std::vector<std::string>{"independence", "year"}));
}

TEST(StringsTest, HumanizeIdentifier) {
  EXPECT_EQ(HumanizeIdentifier("birthDate"), "birth date");
  EXPECT_EQ(HumanizeIdentifier("electionYear"), "election year");
  EXPECT_EQ(HumanizeIdentifier("name"), "name");
}

TEST(StringsTest, EditDistance) {
  EXPECT_EQ(EditDistance("kitten", "sitting"), 3u);
  EXPECT_EQ(EditDistance("", "abc"), 3u);
  EXPECT_EQ(EditDistance("abc", "abc"), 0u);
}

TEST(StringsTest, StringSimilarity) {
  EXPECT_DOUBLE_EQ(StringSimilarity("abc", "abc"), 1.0);
  EXPECT_DOUBLE_EQ(StringSimilarity("", ""), 1.0);
  EXPECT_LT(StringSimilarity("Italy", "ITA"), 1.0);
}

TEST(RngTest, Deterministic) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(RngTest, DoubleInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, IntInRange) {
  Rng rng(7);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.NextInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all values hit
}

TEST(RngTest, IntDegenerateRange) {
  Rng rng(7);
  EXPECT_EQ(rng.NextInt(5, 5), 5);
  EXPECT_EQ(rng.NextInt(5, 4), 5);  // lo >= hi clamps to lo
}

TEST(RngTest, BoolProbability) {
  Rng rng(42);
  int heads = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) {
    if (rng.NextBool(0.25)) ++heads;
  }
  EXPECT_NEAR(static_cast<double>(heads) / n, 0.25, 0.03);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(42);
  double sum = 0.0, sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    double v = rng.NextGaussian(10.0, 2.0);
    sum += v;
    sq += v * v;
  }
  double mean = sum / n;
  double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.1);
  EXPECT_NEAR(var, 4.0, 0.3);
}

TEST(RngTest, ForkIndependentStreams) {
  Rng base(9);
  Rng a = base.Fork("alpha");
  Rng b = base.Fork("beta");
  Rng a2 = base.Fork("alpha");
  EXPECT_EQ(a.Next(), a2.Next());
  EXPECT_NE(a.Next(), b.Next());
}

TEST(RngTest, ShufflePermutes) {
  Rng rng(5);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> orig = v;
  rng.Shuffle(&v);
  std::multiset<int> a(v.begin(), v.end());
  std::multiset<int> b(orig.begin(), orig.end());
  EXPECT_EQ(a, b);
}

TEST(RngTest, HashStringStable) {
  EXPECT_EQ(Rng::HashString("galois"), Rng::HashString("galois"));
  EXPECT_NE(Rng::HashString("galois"), Rng::HashString("Galois"));
  EXPECT_NE(Rng::HashString(""), Rng::HashString("a"));
}

}  // namespace
}  // namespace galois
