// Unit tests for the Spider-like workload: catalog completeness, ground
// truth materialisation, query classification.

#include <gtest/gtest.h>

#include <map>

#include "engine/executor.h"
#include "knowledge/workload.h"
#include "sql/parser.h"

namespace galois::knowledge {
namespace {

const SpiderLikeWorkload& W() {
  static const auto* w = []() {
    auto r = SpiderLikeWorkload::Create();
    EXPECT_TRUE(r.ok()) << r.status();
    return new SpiderLikeWorkload(std::move(r).value());
  }();
  return *w;
}

TEST(WorkloadTest, Exactly46Queries) {
  EXPECT_EQ(W().queries().size(), 46u);
}

TEST(WorkloadTest, QueryIdsAreSequential) {
  for (size_t i = 0; i < W().queries().size(); ++i) {
    EXPECT_EQ(W().queries()[i].id, static_cast<int>(i) + 1);
  }
  EXPECT_TRUE(W().GetQuery(1).ok());
  EXPECT_TRUE(W().GetQuery(46).ok());
  EXPECT_FALSE(W().GetQuery(0).ok());
  EXPECT_FALSE(W().GetQuery(47).ok());
}

TEST(WorkloadTest, ClassMixMatchesDesign) {
  std::map<QueryClass, int> counts;
  for (const QuerySpec& q : W().queries()) ++counts[q.query_class];
  EXPECT_EQ(counts[QueryClass::kSelection], 16);
  EXPECT_EQ(counts[QueryClass::kAggregate], 15);
  EXPECT_EQ(counts[QueryClass::kJoin], 8);
  EXPECT_EQ(counts[QueryClass::kJoinAggregate], 7);
}

TEST(WorkloadTest, EveryQueryHasAnNlParaphrase) {
  for (const QuerySpec& q : W().queries()) {
    EXPECT_FALSE(q.question.empty()) << q.id;
    EXPECT_NE(q.question.back(), ' ');
  }
}

TEST(WorkloadTest, AllLlmTablesRegisteredWithInstances) {
  for (const char* table :
       {"country", "city", "cityMayor", "airport", "airline", "singer",
        "concert", "stadium", "language", "Employees"}) {
    ASSERT_TRUE(W().catalog().HasTable(table)) << table;
    EXPECT_TRUE(W().catalog().GetInstance(table).ok()) << table;
  }
}

TEST(WorkloadTest, EmployeesIsDbSource) {
  auto def = W().catalog().GetTable("Employees");
  ASSERT_TRUE(def.ok());
  EXPECT_EQ(def.value()->default_source, catalog::SourceKind::kDb);
  auto country = W().catalog().GetTable("country");
  EXPECT_EQ(country.value()->default_source, catalog::SourceKind::kLlm);
}

TEST(WorkloadTest, InstancesMatchKbCardinality) {
  auto instance = W().catalog().GetInstance("country").value();
  EXPECT_EQ(instance->NumRows(),
            W().kb().FindConcept("country")->entities.size());
}

TEST(WorkloadTest, MaterialiseFromKbMapsColumnsToAttributes) {
  auto def = W().catalog().GetTable("cityMayor").value();
  auto rel = MaterialiseFromKb(W().kb(), *def);
  ASSERT_TRUE(rel.ok()) << rel.status();
  // Spot-check one mayor row against the KB.
  const Entity& m = W().kb().FindConcept("mayor")->entities[0];
  bool found = false;
  size_t name_idx = rel->schema().Resolve("name").value();
  size_t age_idx = rel->schema().Resolve("age").value();
  for (const Tuple& row : rel->rows()) {
    if (row[name_idx].string_value() == m.key) {
      EXPECT_EQ(row[age_idx], *m.FindAttribute("age"));
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(WorkloadTest, MaterialiseRejectsUnknownConcept) {
  catalog::TableDef def;
  def.name = "ghost";
  def.entity_type = "ghost";
  def.key_column = "name";
  def.columns = {catalog::ColumnDef("name", DataType::kString, true)};
  EXPECT_FALSE(MaterialiseFromKb(W().kb(), def).ok());
}

TEST(WorkloadTest, GroundTruthNonEmptyForAllQueries) {
  for (const QuerySpec& q : W().queries()) {
    auto rd = engine::ExecuteSql(q.sql, W().catalog());
    ASSERT_TRUE(rd.ok()) << q.sql << " -> " << rd.status();
    EXPECT_GT(rd->NumRows(), 0u)
        << "query " << q.id << " has empty ground truth: " << q.sql;
  }
}

TEST(WorkloadTest, ClassificationConsistentWithSql) {
  for (const QuerySpec& q : W().queries()) {
    auto stmt = sql::ParseSelect(q.sql);
    ASSERT_TRUE(stmt.ok());
    bool multi_table =
        stmt.value().from.size() + stmt.value().joins.size() > 1;
    bool has_agg = !stmt.value().group_by.empty();
    for (const auto& item : stmt.value().select_list) {
      has_agg = has_agg || sql::ContainsAggregate(*item.expr);
    }
    QueryClass expected =
        multi_table
            ? (has_agg ? QueryClass::kJoinAggregate : QueryClass::kJoin)
            : (has_agg ? QueryClass::kAggregate : QueryClass::kSelection);
    EXPECT_EQ(q.query_class, expected) << "query " << q.id;
  }
}

TEST(WorkloadTest, QueryClassNames) {
  EXPECT_STREQ(QueryClassName(QueryClass::kSelection), "Selection");
  EXPECT_STREQ(QueryClassName(QueryClass::kAggregate), "Aggregate");
  EXPECT_STREQ(QueryClassName(QueryClass::kJoin), "Join");
  EXPECT_STREQ(QueryClassName(QueryClass::kJoinAggregate),
               "JoinAggregate");
}

TEST(WorkloadTest, DifferentSeedsDifferentInstances) {
  auto w2 = SpiderLikeWorkload::Create(99);
  ASSERT_TRUE(w2.ok());
  auto a = W().catalog().GetInstance("country").value();
  auto b = w2.value().catalog().GetInstance("country").value();
  EXPECT_FALSE(a->SameContents(*b));
}

}  // namespace
}  // namespace galois::knowledge
