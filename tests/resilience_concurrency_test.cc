// Concurrency hammer for the resilience middleware and the router under
// BatchScheduler's parallel dispatch (parallel_batches = 8): the token
// bucket, circuit breaker and stats counters must stay consistent — and
// TSan-clean (this suite is in the TSan CI job's regex) — when many
// round trips pound them from pool threads, including over real loopback
// HTTP against a periodically faulting server.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "knowledge/workload.h"
#include "llm/batch_scheduler.h"
#include "llm/http_llm.h"
#include "llm/model_router.h"
#include "llm/prompt_templates.h"
#include "llm/resilience.h"
#include "llm/simulated_llm.h"
#include "tests/fake_llm_server.h"

namespace galois::llm {
namespace {

using galois::tests::FakeLlmServer;

const knowledge::SpiderLikeWorkload& W() {
  static const auto* w = []() {
    auto r = knowledge::SpiderLikeWorkload::Create();
    EXPECT_TRUE(r.ok());
    return new knowledge::SpiderLikeWorkload(std::move(r).value());
  }();
  return *w;
}

std::unique_ptr<SimulatedLlm> MakeBacking() {
  return std::make_unique<SimulatedLlm>(&W().kb(), ModelProfile::ChatGpt(),
                                        &W().catalog());
}

std::vector<Prompt> ManyAttributePrompts(int n) {
  // Distinct keys so the scheduler's in-flush dedupe keeps all of them.
  const std::vector<const char*> keys = {"Italy", "Japan",  "Kenya",
                                         "Peru",  "France", "Brazil",
                                         "India", "Canada"};
  std::vector<Prompt> prompts;
  prompts.reserve(n);
  for (int i = 0; i < n; ++i) {
    AttributeGetIntent intent;
    intent.concept_name = "country";
    intent.key = keys[i % keys.size()];
    intent.attribute = i / static_cast<int>(keys.size()) % 2 == 0
                           ? "capital"
                           : "continent";
    intent.attribute_description = intent.attribute;
    // Page-style uniqueness beyond key x attribute combinations.
    intent.attribute_description +=
        " variant " + std::to_string(i / (2 * keys.size()));
    prompts.push_back(BuildAttributePrompt(intent));
  }
  return prompts;
}

BatchPolicy HammerPolicy() {
  BatchPolicy policy;
  policy.batch = true;
  policy.max_batch_size = 2;
  policy.parallel_batches = 8;
  return policy;
}

TEST(ResilienceConcurrencyTest, RateLimiterUnderParallelBatches) {
  auto backing = MakeBacking();
  ResilienceOptions options;
  options.rate_limit_per_sec = 4000.0;  // fast but forces real contention
  options.rate_limit_burst = 4.0;
  ResilientLlm resilient(backing.get(), options);

  std::vector<Prompt> prompts = ManyAttributePrompts(64);
  BatchScheduler scheduler(&resilient, HammerPolicy(), "hammer:rate");
  auto limited = scheduler.Run(prompts);
  ASSERT_TRUE(limited.ok()) << limited.status();

  // Same answers as an unthrottled direct run.
  auto reference = MakeBacking();
  BatchScheduler direct(reference.get(), HammerPolicy(), "hammer:direct");
  auto unlimited = direct.Run(prompts);
  ASSERT_TRUE(unlimited.ok());
  ASSERT_EQ(limited.value().size(), unlimited.value().size());
  for (size_t i = 0; i < limited.value().size(); ++i) {
    EXPECT_EQ(limited.value()[i].text, unlimited.value()[i].text) << i;
  }
  // 64 prompts in chunks of 2 = 32 round trips, every one admitted.
  EXPECT_EQ(resilient.stats().round_trips, 32);
  EXPECT_EQ(backing->cost().num_batches, 32);
}

TEST(ResilienceConcurrencyTest, ManyThreadsShareOneTokenBucket) {
  auto backing = MakeBacking();
  ResilienceOptions options;
  options.rate_limit_per_sec = 2000.0;
  options.rate_limit_burst = 1.0;
  ResilientLlm resilient(backing.get(), options);

  std::vector<Prompt> prompts = ManyAttributePrompts(32);
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 4; ++i) {
        auto r = resilient.Complete(prompts[t * 4 + i]);
        if (!r.ok()) failures.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(resilient.stats().round_trips, 32);
  EXPECT_EQ(backing->cost().num_prompts, 32);
}

/// Always fails with a retryable error until told to heal.
class SwitchableModel : public LanguageModel {
 public:
  explicit SwitchableModel(LanguageModel* inner) : inner_(inner) {}
  const std::string& name() const override { return inner_->name(); }

  Result<Completion> Complete(const Prompt& prompt) override {
    inner_calls_.fetch_add(1);
    if (failing_.load()) {
      return MarkRetryable(Status::LlmError("switchable: down"));
    }
    return inner_->Complete(prompt);
  }
  Result<std::vector<Completion>> CompleteBatch(
      const std::vector<Prompt>& prompts) override {
    inner_calls_.fetch_add(1);
    if (failing_.load()) {
      return MarkRetryable(Status::LlmError("switchable: down"));
    }
    return inner_->CompleteBatch(prompts);
  }
  CostMeter cost() const override { return inner_->cost(); }
  void ResetCost() override { inner_->ResetCost(); }

  void set_failing(bool failing) { failing_.store(failing); }
  int64_t inner_calls() const { return inner_calls_.load(); }

 private:
  LanguageModel* inner_;
  std::atomic<bool> failing_{true};
  std::atomic<int64_t> inner_calls_{0};
};

TEST(ResilienceConcurrencyTest, CircuitBreakerUnderParallelBatches) {
  auto backing = MakeBacking();
  SwitchableModel flaky(backing.get());

  ResilienceOptions options;
  options.max_retries = 0;
  options.circuit_failure_threshold = 4;
  options.circuit_cooldown_ms = 30;
  ResilientLlm resilient(&flaky, options);

  std::vector<Prompt> prompts = ManyAttributePrompts(48);
  BatchScheduler scheduler(&resilient, HammerPolicy(), "hammer:circuit");
  auto while_down = scheduler.Run(prompts);
  ASSERT_FALSE(while_down.ok());

  ResilienceStats stats = resilient.stats();
  EXPECT_GE(stats.circuit_opens, 1);
  // The breaker cut off part of the storm: the backend saw fewer calls
  // than the 24 chunks dispatched (how many fewer is timing-dependent).
  EXPECT_LT(flaky.inner_calls(), 24);
  EXPECT_GT(stats.circuit_rejections, 0);

  // Heal, wait out the cooldown, close via a probe, then a full flush
  // must sail through.
  flaky.set_failing(false);
  std::this_thread::sleep_for(std::chrono::milliseconds(40));
  auto probe = resilient.Complete(prompts[0]);
  ASSERT_TRUE(probe.ok()) << probe.status();
  EXPECT_EQ(resilient.circuit_state(), CircuitState::kClosed);

  BatchScheduler healed(&resilient, HammerPolicy(), "hammer:healed");
  auto after = healed.Run(prompts);
  ASSERT_TRUE(after.ok()) << after.status();
  EXPECT_EQ(after.value().size(), prompts.size());
}

TEST(ResilienceConcurrencyTest, LoopbackHttpWithPeriodic429Burst) {
  auto backing = MakeBacking();
  FakeLlmServer::Options server_options;
  server_options.fault_every_n = 5;  // every 5th request is a 429
  server_options.periodic_fault = {FakeLlmServer::FaultKind::k429, 5, 0};
  FakeLlmServer server(backing.get(), server_options);
  ASSERT_TRUE(server.Start().ok());

  HttpLlm http(server.ClientOptions());
  ResilienceOptions options;
  options.max_retries = 4;
  options.initial_backoff_ms = 2;
  options.max_backoff_ms = 20;
  ResilientLlm resilient(&http, options);

  std::vector<Prompt> prompts = ManyAttributePrompts(48);
  BatchScheduler scheduler(&resilient, HammerPolicy(), "hammer:http");
  auto over_http = scheduler.Run(prompts);
  ASSERT_TRUE(over_http.ok()) << over_http.status();

  auto reference = MakeBacking();
  BatchScheduler direct(reference.get(), HammerPolicy(), "hammer:ref");
  auto in_process = direct.Run(prompts);
  ASSERT_TRUE(in_process.ok());
  ASSERT_EQ(over_http.value().size(), in_process.value().size());
  for (size_t i = 0; i < over_http.value().size(); ++i) {
    EXPECT_EQ(over_http.value()[i].text, in_process.value()[i].text) << i;
  }
  EXPECT_GT(server.faults_injected(), 0);
  EXPECT_GT(resilient.stats().retries, 0);
}

TEST(ResilienceConcurrencyTest, RouterUnderConcurrentMixedTraffic) {
  SimulatedLlm cheap(&W().kb(), ModelProfile::Flan(), &W().catalog());
  SimulatedLlm strong(&W().kb(), ModelProfile::ChatGpt(), &W().catalog());
  ModelRouter router;
  ASSERT_TRUE(router.AddBackend("flan", &cheap).ok());
  ASSERT_TRUE(router.AddBackend("chatgpt", &strong).ok());
  ASSERT_TRUE(router.SetRoute("verify", "chatgpt").ok());

  std::vector<Prompt> attributes = ManyAttributePrompts(32);
  std::vector<Prompt> verifies;
  for (int i = 0; i < 32; ++i) {
    VerifyIntent intent;
    intent.concept_name = "country";
    intent.key = i % 2 == 0 ? "Italy" : "Japan";
    intent.attribute = "capital";
    intent.attribute_description = "capital city variant " +
                                   std::to_string(i);
    intent.claimed = Value::String("Rome");
    verifies.push_back(BuildVerifyPrompt(intent));
  }

  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&, t] {
      BatchScheduler scheduler(&router, HammerPolicy(),
                               "hammer:router:" + std::to_string(t));
      auto r = scheduler.Run(t % 2 == 0 ? attributes : verifies);
      if (!r.ok()) failures.fetch_add(1);
      // Concurrent readers of the merged meter must be safe too.
      (void)router.cost();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);

  CostMeter cost = router.cost();
  EXPECT_EQ(cost.num_prompts, 8 * 32);
  ASSERT_EQ(cost.by_model.size(), 2u);
  EXPECT_EQ(cost.by_model.at(cheap.name()).num_prompts, 4 * 32);
  EXPECT_EQ(cost.by_model.at(strong.name()).num_prompts, 4 * 32);
}

}  // namespace
}  // namespace galois::llm
