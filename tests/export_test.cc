// Tests for the CSV export of experiment outcomes, plus seed-robustness
// properties of the whole pipeline (the paper's shape must not hinge on
// one lucky seed).

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "common/strings.h"
#include "eval/export.h"
#include "knowledge/workload.h"
#include "llm/model_profile.h"

namespace galois::eval {
namespace {

std::vector<QueryOutcome> SampleOutcomes() {
  std::vector<QueryOutcome> outcomes(2);
  outcomes[0].query_id = 1;
  outcomes[0].query_class = knowledge::QueryClass::kSelection;
  outcomes[0].rd_rows = 10;
  outcomes[0].rm_rows = 8;
  outcomes[0].cardinality_diff_percent = -11.11;
  outcomes[0].galois_match = CellMatchResult{8, 10};
  outcomes[0].galois_cost.num_prompts = 42;
  outcomes[0].galois_cost.simulated_latency_ms = 1234.5;
  outcomes[1].query_id = 2;
  outcomes[1].query_class = knowledge::QueryClass::kJoin;
  outcomes[1].rd_rows = 5;
  // no galois data for q2 (tests empty optional fields)
  return outcomes;
}

TEST(ExportTest, OutcomesCsvShape) {
  std::string csv = OutcomesToCsv(SampleOutcomes());
  std::vector<std::string> lines = Split(csv, '\n', false, true);
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_TRUE(StartsWith(lines[0], "query_id,class,rd_rows"));
  EXPECT_TRUE(StartsWith(lines[1], "1,Selection,10,8,-11.11,80.00"));
  // Missing fields stay empty, trailing costs still rendered.
  EXPECT_TRUE(StartsWith(lines[2], "2,Join,5,,,,"));
}

TEST(ExportTest, Table1Csv) {
  std::vector<std::pair<std::string, std::vector<QueryOutcome>>> per_model{
      {"ModelA", SampleOutcomes()}};
  std::string csv = Table1Csv(per_model);
  EXPECT_NE(csv.find("model,cardinality_diff_pct"), std::string::npos);
  EXPECT_NE(csv.find("ModelA,-11.11"), std::string::npos);
}

TEST(ExportTest, Table2Csv) {
  std::string csv = Table2Csv(SampleOutcomes());
  std::vector<std::string> lines = Split(csv, '\n', false, true);
  ASSERT_EQ(lines.size(), 4u);
  EXPECT_TRUE(StartsWith(lines[1], "galois,"));
  EXPECT_TRUE(StartsWith(lines[2], "nl_qa,"));
  EXPECT_TRUE(StartsWith(lines[3], "cot_qa,"));
}

TEST(ExportTest, WriteFileRoundTrip) {
  std::string path = "/tmp/galois_export_test.csv";
  ASSERT_TRUE(WriteFile(path, "a,b\n1,2\n").ok());
  std::ifstream in(path);
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  EXPECT_EQ(content, "a,b\n1,2\n");
  std::remove(path.c_str());
}

TEST(ExportTest, WriteFileFailsOnBadPath) {
  EXPECT_FALSE(WriteFile("/nonexistent-dir/x.csv", "data").ok());
}

// --- seed robustness -------------------------------------------------------

class SeedRobustnessTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SeedRobustnessTest, Table1ShapeHoldsAcrossModelSeeds) {
  // Different LLM seeds redraw every noise decision; the qualitative
  // ordering of Table 1 must survive.
  static const auto* workload = []() {
    auto r = knowledge::SpiderLikeWorkload::Create();
    return new knowledge::SpiderLikeWorkload(std::move(r).value());
  }();
  ExperimentConfig config;
  config.run_galois = true;
  config.llm_seed = GetParam();
  double flan = AverageCardinalityDiff(
      RunExperiment(*workload, llm::ModelProfile::Flan(), config)
          .value());
  double gpt3 = AverageCardinalityDiff(
      RunExperiment(*workload, llm::ModelProfile::Gpt3(), config)
          .value());
  double chatgpt = AverageCardinalityDiff(
      RunExperiment(*workload, llm::ModelProfile::ChatGpt(), config)
          .value());
  // Coarse bands: the 46-query sample gives a +/-10-point seed variance
  // (documented in EXPERIMENTS.md), so assert ordering plus loose bounds.
  EXPECT_LT(flan, -25.0);   // small model misses many rows
  EXPECT_GT(gpt3, -20.0);   // GPT-3 closest to exact
  EXPECT_LT(chatgpt, gpt3); // ChatGPT between the two
  EXPECT_GT(chatgpt, flan);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedRobustnessTest,
                         ::testing::Values(11, 23, 47));

}  // namespace
}  // namespace galois::eval
