// Speculative key-scan prefetch: identical keys/pages/meters to the
// sequential scan when termination is the page cap, bounded overfetch
// on early termination, LIMIT-bounded scans never speculate, and
// cancellation still cuts the scan off.

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "common/cancel.h"
#include "core/galois_executor.h"
#include "core/llm_operators.h"
#include "knowledge/workload.h"
#include "llm/prompt_cache.h"
#include "llm/simulated_llm.h"

namespace galois::core {
namespace {

const knowledge::SpiderLikeWorkload& W() {
  static const auto* w = []() {
    auto r = knowledge::SpiderLikeWorkload::Create();
    EXPECT_TRUE(r.ok());
    return new knowledge::SpiderLikeWorkload(std::move(r).value());
  }();
  return *w;
}

const catalog::TableDef& CountryDef() {
  return *W().catalog().GetTable("country").value();
}

llm::ModelProfile FullCoverage(int page_size) {
  llm::ModelProfile p = llm::ModelProfile::ChatGpt();
  p.coverage_floor = 1.0;
  p.coverage_gain = 0.0;
  p.paging_fatigue = 0.0;
  p.hallucinated_key_rate = 0.0;
  p.unknown_rate = 0.0;
  p.fact_accuracy = 1.0;
  p.numeric_fact_accuracy = 1.0;
  p.value_format_noise = 0.0;
  p.reference_style_noise = 0.0;
  p.verbosity = 0.0;
  p.filter_check_error = 0.0;
  p.pushdown_error = 0.0;
  p.page_size = page_size;
  return p;
}

TEST(ScanPrefetchTest, CapTerminationMatchesSequentialExactly) {
  // Cap termination: every issued page is wanted, so the speculative
  // scan buys the same pages as the sequential one — identical keys,
  // identical spend, zero overfetch.
  ExecutionOptions sequential;
  sequential.max_scan_pages = 3;
  ExecutionOptions prefetched = sequential;
  prefetched.prefetch_pages = 2;

  llm::SimulatedLlm seq_model(&W().kb(), FullCoverage(5), nullptr, 7);
  KeyScanStats seq_stats;
  auto seq = LlmKeyScan(&seq_model, CountryDef(), sequential,
                        /*filter=*/std::nullopt, &seq_stats);
  ASSERT_TRUE(seq.ok());

  llm::SimulatedLlm pre_model(&W().kb(), FullCoverage(5), nullptr, 7);
  KeyScanStats pre_stats;
  auto pre = LlmKeyScan(&pre_model, CountryDef(), prefetched,
                        /*filter=*/std::nullopt, &pre_stats);
  ASSERT_TRUE(pre.ok());

  EXPECT_EQ(*seq, *pre);
  EXPECT_EQ(seq_stats.pages, 3);
  EXPECT_EQ(pre_stats.pages, 3);
  EXPECT_EQ(pre_stats.prefetched, 2);
  EXPECT_EQ(pre_stats.overfetched, 0);
  EXPECT_EQ(seq_model.cost().num_prompts, pre_model.cost().num_prompts);
  EXPECT_EQ(seq_model.cost().prompt_tokens, pre_model.cost().prompt_tokens);
  EXPECT_EQ(seq_model.cost().completion_tokens,
            pre_model.cost().completion_tokens);
}

TEST(ScanPrefetchTest, EarlyTerminationJoinsAndCountsOverfetch) {
  // One page holds the whole table, page 2 says "no more": the window
  // has already bought page 3. It is joined (it billed) and counted as
  // overfetched; the key set stays identical to sequential.
  ExecutionOptions sequential;
  ExecutionOptions prefetched = sequential;
  prefetched.prefetch_pages = 2;

  llm::SimulatedLlm seq_model(&W().kb(), FullCoverage(50), nullptr, 7);
  auto seq = LlmKeyScan(&seq_model, CountryDef(), sequential);
  ASSERT_TRUE(seq.ok());

  llm::SimulatedLlm pre_model(&W().kb(), FullCoverage(50), nullptr, 7);
  KeyScanStats stats;
  auto pre = LlmKeyScan(&pre_model, CountryDef(), prefetched,
                        /*filter=*/std::nullopt, &stats);
  ASSERT_TRUE(pre.ok());

  EXPECT_EQ(*seq, *pre);
  EXPECT_GE(stats.overfetched, 1);
  EXPECT_EQ(stats.pages - stats.overfetched,
            static_cast<int>(seq_model.cost().num_prompts));
  // Every speculated round trip was paid for.
  EXPECT_EQ(static_cast<int>(pre_model.cost().num_prompts), stats.pages);
}

TEST(ScanPrefetchTest, WindowWiderThanPageCapTerminates) {
  // prefetch_pages >= max_scan_pages: the fill must stop at the cap,
  // not wait for a window that can never fill.
  ExecutionOptions options;
  options.max_scan_pages = 2;
  options.prefetch_pages = 8;
  llm::SimulatedLlm model(&W().kb(), FullCoverage(5), nullptr, 7);
  KeyScanStats stats;
  auto keys = LlmKeyScan(&model, CountryDef(), options,
                         /*filter=*/std::nullopt, &stats);
  ASSERT_TRUE(keys.ok());
  EXPECT_EQ(stats.pages, 2);
  EXPECT_EQ(model.cost().num_prompts, 2);
}

TEST(ScanPrefetchTest, LimitBoundedScanNeverSpeculates) {
  // A LIMIT-derived key bound promises no round trip past the
  // satisfying page; prefetch must be disabled, not merely trimmed.
  ExecutionOptions options;
  options.prefetch_pages = 4;
  llm::SimulatedLlm model(&W().kb(), FullCoverage(5), nullptr, 7);
  KeyScanStats stats;
  auto keys = LlmKeyScan(&model, CountryDef(), options,
                         /*filter=*/std::nullopt, &stats,
                         /*key_limit=*/7);
  ASSERT_TRUE(keys.ok());
  EXPECT_EQ(stats.prefetched, 0);
  EXPECT_EQ(stats.overfetched, 0);
  EXPECT_EQ(stats.pages, 2);  // ceil(7 / page_size 5)
  EXPECT_EQ(model.cost().num_prompts, 2);
}

TEST(ScanPrefetchTest, CancellationStopsTheScan) {
  ExecutionOptions options;
  options.prefetch_pages = 2;
  options.control = std::make_shared<CancelState>();
  options.control->RequestCancel();
  llm::SimulatedLlm model(&W().kb(), FullCoverage(5), nullptr, 7);
  auto keys = LlmKeyScan(&model, CountryDef(), options);
  ASSERT_FALSE(keys.ok());
  EXPECT_EQ(keys.status().code(), StatusCode::kCancelled);
}

TEST(ScanPrefetchTest, ExecutorQueryIsIdenticalWithPrefetch) {
  // End to end: the same query with and without speculation returns the
  // same relation at the same LLM spend when the scan ends at the page
  // cap, and the prefetch counters surface in QueryOutput.
  ExecutionOptions base;
  base.max_scan_pages = 3;
  ExecutionOptions spec = base;
  spec.prefetch_pages = 2;

  llm::SimulatedLlm plain_model(&W().kb(), FullCoverage(5), &W().catalog(),
                                7);
  GaloisExecutor plain(&plain_model, &W().catalog(), base);
  auto want = plain.RunSql("SELECT name, capital FROM country");
  ASSERT_TRUE(want.ok());

  llm::SimulatedLlm spec_model(&W().kb(), FullCoverage(5), &W().catalog(),
                               7);
  GaloisExecutor speculating(&spec_model, &W().catalog(), spec);
  auto got = speculating.RunSql("SELECT name, capital FROM country");
  ASSERT_TRUE(got.ok());

  EXPECT_TRUE(want->relation.SameContents(got->relation));
  EXPECT_EQ(want->cost.num_prompts, got->cost.num_prompts);
  EXPECT_EQ(want->scan_pages_prefetched, 0);
  EXPECT_EQ(got->scan_pages_prefetched, 2);
  EXPECT_EQ(got->scan_pages_overfetched, 0);
  // The explain report announces the speculative paging.
  EXPECT_NE(got->physical_plan.find("prefetched speculatively"),
            std::string::npos)
      << got->physical_plan;
}

TEST(ScanPrefetchTest, PrefetchedPagesLandInThePromptCache) {
  // Overfetched pages are not wasted: their completions settle into a
  // prompt-cache decorator, so a later scan that *does* want those
  // pages gets them for free.
  ExecutionOptions options;
  options.prefetch_pages = 3;
  llm::SimulatedLlm inner(&W().kb(), FullCoverage(50), nullptr, 7);
  llm::PromptCache cached(&inner);
  KeyScanStats stats;
  auto first = LlmKeyScan(&cached, CountryDef(), options,
                          /*filter=*/std::nullopt, &stats);
  ASSERT_TRUE(first.ok());
  ASSERT_GE(stats.overfetched, 1);
  const int64_t bought = inner.cost().num_prompts;

  // Identical rerun: every page — wanted and overfetched — is a cache
  // hit; the transport sees nothing new.
  auto second = LlmKeyScan(&cached, CountryDef(), options);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(*first, *second);
  EXPECT_EQ(inner.cost().num_prompts, bought);
}

}  // namespace
}  // namespace galois::core
