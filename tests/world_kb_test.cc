// Unit tests for the synthetic world knowledge base.

#include <gtest/gtest.h>

#include <set>

#include "knowledge/world_kb.h"

namespace galois::knowledge {
namespace {

const WorldKb& Kb() {
  static const WorldKb* kb = new WorldKb(WorldKb::Generate());
  return *kb;
}

TEST(WorldKbTest, AllConceptsPresent) {
  std::set<std::string> names;
  for (const std::string& n : Kb().ConceptNames()) names.insert(n);
  for (const char* expected :
       {"country", "city", "mayor", "airport", "airline", "singer",
        "concert", "stadium", "language"}) {
    EXPECT_TRUE(names.count(expected)) << expected;
  }
}

TEST(WorldKbTest, GenerationIsDeterministic) {
  WorldKb a = WorldKb::Generate(5);
  WorldKb b = WorldKb::Generate(5);
  const EntitySet* ca = a.FindConcept("country");
  const EntitySet* cb = b.FindConcept("country");
  ASSERT_EQ(ca->entities.size(), cb->entities.size());
  for (size_t i = 0; i < ca->entities.size(); ++i) {
    EXPECT_EQ(ca->entities[i].key, cb->entities[i].key);
    EXPECT_EQ(ca->entities[i].attributes, cb->entities[i].attributes);
  }
}

TEST(WorldKbTest, DifferentSeedsChangeSynthesisedValues) {
  WorldKb a = WorldKb::Generate(1);
  WorldKb b = WorldKb::Generate(2);
  // Names are static; the synthesised magnitudes differ.
  int differing = 0;
  const EntitySet* ca = a.FindConcept("country");
  for (const Entity& e : ca->entities) {
    Value pa = a.GetAttribute("country", e.key, "population").value();
    Value pb = b.GetAttribute("country", e.key, "population").value();
    if (!(pa == pb)) ++differing;
  }
  EXPECT_GT(differing, 10);
}

TEST(WorldKbTest, EntityCounts) {
  EXPECT_EQ(Kb().FindConcept("country")->entities.size(), 48u);
  EXPECT_GT(Kb().FindConcept("city")->entities.size(), 90u);
  EXPECT_EQ(Kb().FindConcept("city")->entities.size(),
            Kb().FindConcept("mayor")->entities.size());
  EXPECT_GT(Kb().FindConcept("airport")->entities.size(), 40u);
}

TEST(WorldKbTest, PopularityInUnitInterval) {
  for (const std::string& concept_name : Kb().ConceptNames()) {
    for (const Entity& e :
         Kb().FindConcept(concept_name)->entities) {
      EXPECT_GT(e.popularity, 0.0) << concept_name << "/" << e.key;
      EXPECT_LE(e.popularity, 1.0) << concept_name << "/" << e.key;
    }
  }
}

TEST(WorldKbTest, GetAttributeSuccessAndErrors) {
  auto capital = Kb().GetAttribute("country", "France", "capital");
  ASSERT_TRUE(capital.ok());
  EXPECT_EQ(capital.value().string_value(), "Paris");
  EXPECT_FALSE(Kb().GetAttribute("country", "Narnia", "capital").ok());
  EXPECT_FALSE(Kb().GetAttribute("country", "France", "nosuch").ok());
  EXPECT_FALSE(Kb().GetAttribute("nosuch", "France", "capital").ok());
}

TEST(WorldKbTest, CaseInsensitiveEntityLookup) {
  const EntitySet* countries = Kb().FindConcept("country");
  EXPECT_NE(countries->FindEntity("italy"), nullptr);
  EXPECT_NE(countries->FindEntity("ITALY"), nullptr);
}

TEST(WorldKbTest, ReferentialIntegrityCityCountry) {
  const EntitySet* cities = Kb().FindConcept("city");
  const EntitySet* countries = Kb().FindConcept("country");
  for (const Entity& city : cities->entities) {
    const Value* country = city.FindAttribute("country");
    ASSERT_NE(country, nullptr);
    EXPECT_NE(countries->FindEntity(country->string_value()), nullptr)
        << city.key << " references unknown country";
  }
}

TEST(WorldKbTest, ReferentialIntegrityMayors) {
  const EntitySet* cities = Kb().FindConcept("city");
  const EntitySet* mayors = Kb().FindConcept("mayor");
  for (const Entity& city : cities->entities) {
    const Value* mayor = city.FindAttribute("mayor");
    ASSERT_NE(mayor, nullptr);
    EXPECT_NE(mayors->FindEntity(mayor->string_value()), nullptr)
        << city.key << " has unknown mayor";
  }
}

TEST(WorldKbTest, ReferentialIntegrityConcerts) {
  const EntitySet* concerts = Kb().FindConcept("concert");
  const EntitySet* singers = Kb().FindConcept("singer");
  const EntitySet* stadiums = Kb().FindConcept("stadium");
  for (const Entity& c : concerts->entities) {
    EXPECT_NE(singers->FindEntity(c.FindAttribute("singer")->string_value()),
              nullptr);
    EXPECT_NE(
        stadiums->FindEntity(c.FindAttribute("stadium")->string_value()),
        nullptr);
  }
}

TEST(WorldKbTest, CapitalsAreCities) {
  const EntitySet* countries = Kb().FindConcept("country");
  const EntitySet* cities = Kb().FindConcept("city");
  for (const Entity& country : countries->entities) {
    const Value* capital = country.FindAttribute("capital");
    EXPECT_NE(cities->FindEntity(capital->string_value()), nullptr)
        << country.key;
  }
}

TEST(WorldKbTest, MayorAgeConsistentWithBirthDate) {
  const EntitySet* mayors = Kb().FindConcept("mayor");
  for (const Entity& m : mayors->entities) {
    int y, mo, d;
    UnpackDate(m.FindAttribute("birthdate")->date_packed(), &y, &mo, &d);
    EXPECT_EQ(m.FindAttribute("age")->int_value(), 2023 - y);
  }
}

TEST(WorldKbTest, SurfaceFormsCountry) {
  auto forms = Kb().SurfaceForms("country", "Italy");
  ASSERT_GE(forms.size(), 3u);
  EXPECT_EQ(forms[0], "Italy");
  EXPECT_EQ(forms[1], "ITA");
  EXPECT_EQ(forms[2], "IT");
}

TEST(WorldKbTest, SurfaceFormsCityIncludesDisambiguated) {
  auto forms = Kb().SurfaceForms("city", "Rome");
  ASSERT_GE(forms.size(), 2u);
  EXPECT_EQ(forms[0], "Rome");
  EXPECT_EQ(forms[1], "Rome, Italy");
}

TEST(WorldKbTest, SurfaceFormsPersonAbbreviation) {
  const Entity& mayor = Kb().FindConcept("mayor")->entities[0];
  auto forms = Kb().SurfaceForms("mayor", mayor.key);
  ASSERT_GE(forms.size(), 2u);
  EXPECT_EQ(forms[1][1], '.');  // "X. Lastname"
}

TEST(WorldKbTest, SurfaceFormsUnknownEntityReturnsKey) {
  auto forms = Kb().SurfaceForms("country", "Narnia");
  ASSERT_EQ(forms.size(), 1u);
  EXPECT_EQ(forms[0], "Narnia");
}

TEST(WorldKbTest, ReferencedConceptMapping) {
  EXPECT_EQ(WorldKb::ReferencedConcept("city", "country"), "country");
  EXPECT_EQ(WorldKb::ReferencedConcept("country", "capital"), "city");
  EXPECT_EQ(WorldKb::ReferencedConcept("concert", "singer"), "singer");
  EXPECT_EQ(WorldKb::ReferencedConcept("concert", "stadium"), "stadium");
  EXPECT_EQ(WorldKb::ReferencedConcept("country", "language"), "language");
  EXPECT_EQ(WorldKb::ReferencedConcept("city", "mayor"), "mayor");
  // Non-references.
  EXPECT_EQ(WorldKb::ReferencedConcept("country", "code"), "");
  EXPECT_EQ(WorldKb::ReferencedConcept("country", "population"), "");
  EXPECT_EQ(WorldKb::ReferencedConcept("singer", "name"), "");
}

}  // namespace
}  // namespace galois::knowledge
