// Unit tests for the catalog: table defs, key handling, instances.

#include <gtest/gtest.h>

#include "catalog/catalog.h"

namespace galois::catalog {
namespace {

TableDef MakeCountry() {
  TableDef t;
  t.name = "country";
  t.entity_type = "country";
  t.key_column = "name";
  t.columns = {ColumnDef("name", DataType::kString, true, "country name"),
               ColumnDef("population", DataType::kInt64)};
  return t;
}

TEST(CatalogTest, AddAndGetTable) {
  Catalog c;
  ASSERT_TRUE(c.AddTable(MakeCountry()).ok());
  auto def = c.GetTable("country");
  ASSERT_TRUE(def.ok());
  EXPECT_EQ(def.value()->name, "country");
  EXPECT_TRUE(c.HasTable("COUNTRY"));  // case-insensitive
  EXPECT_FALSE(c.HasTable("city"));
}

TEST(CatalogTest, DuplicateTableRejected) {
  Catalog c;
  ASSERT_TRUE(c.AddTable(MakeCountry()).ok());
  Status s = c.AddTable(MakeCountry());
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kAlreadyExists);
}

TEST(CatalogTest, BadKeyColumnRejected) {
  Catalog c;
  TableDef t = MakeCountry();
  t.key_column = "nosuch";
  EXPECT_FALSE(c.AddTable(t).ok());
}

TEST(CatalogTest, KeyIndex) {
  TableDef t = MakeCountry();
  EXPECT_EQ(t.KeyIndex().value(), 0u);
  t.key_column = "population";
  EXPECT_EQ(t.KeyIndex().value(), 1u);
}

TEST(CatalogTest, FindColumnCaseInsensitive) {
  TableDef t = MakeCountry();
  EXPECT_TRUE(t.FindColumn("Population").ok());
  EXPECT_FALSE(t.FindColumn("nosuch").ok());
}

TEST(CatalogTest, ToSchemaQualifies) {
  TableDef t = MakeCountry();
  Schema with_alias = t.ToSchema("c");
  EXPECT_EQ(with_alias.column(0).table, "c");
  Schema bare = t.ToSchema();
  EXPECT_EQ(bare.column(0).table, "country");
  EXPECT_EQ(bare.column(1).type, DataType::kInt64);
}

TEST(CatalogTest, InstanceLifecycle) {
  Catalog c;
  ASSERT_TRUE(c.AddTable(MakeCountry()).ok());
  // No instance yet.
  EXPECT_FALSE(c.GetInstance("country").ok());
  Relation rel(MakeCountry().ToSchema());
  rel.AddRowUnchecked({Value::String("Italy"), Value::Int(59000000)});
  ASSERT_TRUE(c.AddInstance("country", std::move(rel)).ok());
  auto instance = c.GetInstance("Country");
  ASSERT_TRUE(instance.ok());
  EXPECT_EQ(instance.value()->NumRows(), 1u);
}

TEST(CatalogTest, InstanceForUnknownTableRejected) {
  Catalog c;
  EXPECT_FALSE(c.AddInstance("ghost", Relation()).ok());
}

TEST(CatalogTest, TableNamesEnumerates) {
  Catalog c;
  ASSERT_TRUE(c.AddTable(MakeCountry()).ok());
  TableDef t2 = MakeCountry();
  t2.name = "city";
  ASSERT_TRUE(c.AddTable(t2).ok());
  auto names = c.TableNames();
  EXPECT_EQ(names.size(), 2u);
}

TEST(CatalogTest, SourceKindNames) {
  EXPECT_STREQ(SourceKindName(SourceKind::kDb), "DB");
  EXPECT_STREQ(SourceKindName(SourceKind::kLlm), "LLM");
}

}  // namespace
}  // namespace galois::catalog
