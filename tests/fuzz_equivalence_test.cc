// Property-based equivalence fuzzing: generate random SPJA queries over
// the workload catalog and check that
//   (a) the ground-truth engine executes them deterministically,
//   (b) Galois over a *perfect* (noise-free) model reproduces the engine
//       exactly — any divergence is an executor bug, not model noise,
//   (c) Galois over a noisy model still produces the expected schema.

#include <gtest/gtest.h>

#include <sstream>

#include "api/database.h"
#include "common/rng.h"
#include "core/galois_executor.h"
#include "engine/executor.h"
#include "knowledge/workload.h"
#include "llm/simulated_llm.h"
#include "sql/parser.h"

namespace galois {
namespace {

const knowledge::SpiderLikeWorkload& W() {
  static const auto* w = []() {
    auto r = knowledge::SpiderLikeWorkload::Create();
    EXPECT_TRUE(r.ok());
    return new knowledge::SpiderLikeWorkload(std::move(r).value());
  }();
  return *w;
}

llm::ModelProfile PerfectProfile() {
  llm::ModelProfile p = llm::ModelProfile::ChatGpt();
  p.name = "perfect";
  p.coverage_floor = 1.0;
  p.coverage_gain = 0.0;
  p.unknown_rate = 0.0;
  p.fake_entity_confidence = 0.0;
  p.fact_accuracy = 1.0;
  p.numeric_fact_accuracy = 1.0;
  p.reference_style_noise = 0.0;
  p.value_format_noise = 0.0;
  p.verbosity = 0.0;
  p.paging_fatigue = 0.0;
  p.hallucinated_key_rate = 0.0;
  p.pushdown_error = 0.0;
  p.filter_check_error = 0.0;
  return p;
}

/// Deterministic random SPJA query generator over the LLM-backed tables.
class QueryGenerator {
 public:
  explicit QueryGenerator(uint64_t seed) : rng_(seed) {}

  std::string Generate() {
    // Single-table or two-table join shape.
    bool join = rng_.NextBool(0.35);
    if (join) return GenerateJoin();
    return GenerateSingleTable();
  }

 private:
  struct TableInfo {
    const char* name;
    const char* key;
    std::vector<const char*> string_cols;
    std::vector<const char*> numeric_cols;
  };

  const TableInfo& PickTable() {
    static const std::vector<TableInfo>* kTables =
        new std::vector<TableInfo>{
            {"country",
             "name",
             {"continent", "language", "currency"},
             {"population", "area", "independenceYear"}},
            {"city", "name", {"country"}, {"population", "elevation"}},
            {"airline", "name", {"country"}, {"foundedYear", "fleetSize"}},
            {"singer", "name", {"genre", "country"}, {"birthYear"}},
            {"stadium", "name", {"city"}, {"capacity", "openedYear"}},
            {"language", "name", {"family"}, {"speakers"}},
        };
    return (*kTables)[static_cast<size_t>(
        rng_.NextInt(0, static_cast<int64_t>(kTables->size()) - 1))];
  }

  std::string NumericPredicate(const TableInfo& t) {
    const char* col = t.numeric_cols[static_cast<size_t>(rng_.NextInt(
        0, static_cast<int64_t>(t.numeric_cols.size()) - 1))];
    const char* op = rng_.NextBool(0.5) ? ">" : "<";
    // Thresholds chosen to hit a mid-range selectivity for our data.
    int64_t threshold;
    std::string c = col;
    if (c.find("Year") != std::string::npos) {
      threshold = rng_.NextInt(1930, 1995);
    } else if (c == "population") {
      threshold = rng_.NextInt(1, 150) * 1000000;
    } else if (c == "speakers") {
      threshold = rng_.NextInt(50, 800) * 1000000;
    } else {
      threshold = rng_.NextInt(10, 5000);
    }
    std::ostringstream os;
    os << col << " " << op << " " << threshold;
    return os.str();
  }

  std::string GenerateSingleTable() {
    const TableInfo& t = PickTable();
    std::ostringstream os;
    int shape = static_cast<int>(rng_.NextInt(0, 3));
    switch (shape) {
      case 0:  // selection + projection
        os << "SELECT " << t.key;
        if (rng_.NextBool(0.5) && !t.numeric_cols.empty()) {
          os << ", " << t.numeric_cols[0];
        }
        os << " FROM " << t.name << " WHERE " << NumericPredicate(t);
        break;
      case 1:  // scalar aggregate
        os << "SELECT "
           << (rng_.NextBool(0.5) ? "COUNT(*)"
                                  : std::string("AVG(") +
                                        t.numeric_cols[0] + ")")
           << " FROM " << t.name << " WHERE " << NumericPredicate(t);
        break;
      case 2:  // group by
        os << "SELECT " << t.string_cols[0] << ", COUNT(*) FROM "
           << t.name << " GROUP BY " << t.string_cols[0];
        break;
      default:  // order by + limit
        os << "SELECT " << t.key << " FROM " << t.name << " ORDER BY "
           << t.numeric_cols[0] << (rng_.NextBool(0.5) ? " DESC" : "")
           << " LIMIT " << rng_.NextInt(1, 10);
        break;
    }
    return os.str();
  }

  std::string GenerateJoin() {
    // Join pairs with known reference attributes.
    struct JoinShape {
      const char* left;
      const char* left_col;
      const char* right;
      const char* right_key;
      const char* project;
    };
    static const JoinShape kJoins[] = {
        {"city", "country", "country", "name", "co.continent"},
        {"airline", "country", "country", "name", "co.capital"},
        {"singer", "country", "country", "name", "co.continent"},
        {"stadium", "city", "city", "name", "co.country"},
    };
    const JoinShape& j = kJoins[static_cast<size_t>(
        rng_.NextInt(0, std::size(kJoins) - 1))];
    std::ostringstream os;
    if (rng_.NextBool(0.4)) {
      os << "SELECT " << j.project << ", COUNT(*) FROM " << j.left
         << " l, " << j.right << " co WHERE l." << j.left_col
         << " = co." << j.right_key << " GROUP BY " << j.project;
    } else {
      os << "SELECT l." << j.left_col << ", " << j.project << " FROM "
         << j.left << " l, " << j.right << " co WHERE l." << j.left_col
         << " = co." << j.right_key;
    }
    return os.str();
  }

  Rng rng_;
};

class FuzzEquivalenceTest : public ::testing::TestWithParam<int> {};

TEST_P(FuzzEquivalenceTest, PerfectGaloisMatchesEngine) {
  QueryGenerator gen(static_cast<uint64_t>(GetParam()) * 7919 + 13);
  llm::SimulatedLlm model(&W().kb(), PerfectProfile(), &W().catalog(), 7);
  core::GaloisExecutor galois(&model, &W().catalog());
  for (int i = 0; i < 5; ++i) {
    std::string sql = gen.Generate();
    SCOPED_TRACE(sql);
    auto stmt = sql::ParseSelect(sql);
    ASSERT_TRUE(stmt.ok()) << stmt.status();
    auto rd = engine::ExecuteSelect(stmt.value(), W().catalog());
    ASSERT_TRUE(rd.ok()) << rd.status();
    auto rd2 = engine::ExecuteSelect(stmt.value(), W().catalog());
    ASSERT_TRUE(rd2.ok());
    EXPECT_TRUE(rd->SameContents(*rd2));  // engine determinism
    auto rm = galois.Execute(stmt.value());
    ASSERT_TRUE(rm.ok()) << rm.status();
    EXPECT_TRUE(rm->SameContents(*rd));   // perfect model == engine
  }
}

TEST_P(FuzzEquivalenceTest, NoisyGaloisKeepsSchemaContract) {
  QueryGenerator gen(static_cast<uint64_t>(GetParam()) * 104729 + 5);
  llm::SimulatedLlm model(&W().kb(), llm::ModelProfile::ChatGpt(),
                          &W().catalog(), 7);
  core::GaloisExecutor galois(&model, &W().catalog());
  for (int i = 0; i < 3; ++i) {
    std::string sql = gen.Generate();
    SCOPED_TRACE(sql);
    auto stmt = sql::ParseSelect(sql);
    ASSERT_TRUE(stmt.ok());
    auto rd = engine::ExecuteSelect(stmt.value(), W().catalog());
    ASSERT_TRUE(rd.ok());
    auto rm = galois.Execute(stmt.value());
    ASSERT_TRUE(rm.ok()) << rm.status();
    ASSERT_EQ(rm->NumColumns(), rd->NumColumns());
    for (size_t c = 0; c < rd->NumColumns(); ++c) {
      EXPECT_EQ(rm->schema().column(c).name, rd->schema().column(c).name);
    }
  }
}

TEST_P(FuzzEquivalenceTest, ReplanningIsDeterministic) {
  // Session::Query compiles a fresh logical + physical plan on every
  // call. Re-planning the same statement must reproduce the relation,
  // the cost meter and the physical-plan report byte for byte — any
  // divergence means the planner annotations or the plan compiler are
  // not a pure function of (statement, catalog, options).
  QueryGenerator gen(static_cast<uint64_t>(GetParam()) * 31337 + 71);
  llm::SimulatedLlm model(&W().kb(), PerfectProfile(), &W().catalog(), 7);
  DatabaseOptions db_options;
  db_options.workload = &W();
  BackendSpec spec;
  spec.name = "perfect";
  spec.external = &model;
  db_options.backends.push_back(std::move(spec));
  auto db = Database::Open(std::move(db_options));
  ASSERT_TRUE(db.ok()) << db.status();
  Session session = db.value()->CreateSession();
  for (int i = 0; i < 3; ++i) {
    std::string sql = gen.Generate();
    SCOPED_TRACE(sql);
    auto first = session.Query(sql);
    ASSERT_TRUE(first.ok()) << first.status();
    EXPECT_EQ(session.Explain(), first->physical_plan);
    auto second = session.Query(sql);  // forced re-plan, same statement
    ASSERT_TRUE(second.ok()) << second.status();
    EXPECT_TRUE(second->relation.SameContents(first->relation));
    EXPECT_EQ(second->cost.num_prompts, first->cost.num_prompts);
    EXPECT_EQ(second->cost.prompt_tokens, first->cost.prompt_tokens);
    EXPECT_EQ(second->cost.completion_tokens,
              first->cost.completion_tokens);
    EXPECT_EQ(second->cost.num_batches, first->cost.num_batches);
    EXPECT_EQ(second->cost.simulated_latency_ms,
              first->cost.simulated_latency_ms);
    EXPECT_EQ(second->physical_plan, first->physical_plan);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzEquivalenceTest,
                         ::testing::Range(0, 12));

}  // namespace
}  // namespace galois
