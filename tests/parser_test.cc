// Unit tests for the SQL parser: clause coverage, expression precedence,
// source qualifiers, and error reporting. Includes a parameterized
// round-trip property over the full workload query set.

#include <gtest/gtest.h>

#include "knowledge/workload.h"
#include "sql/parser.h"

namespace galois::sql {
namespace {

SelectStatement Parse(const std::string& q) {
  auto r = ParseSelect(q);
  EXPECT_TRUE(r.ok()) << q << " -> " << r.status();
  if (!r.ok()) return SelectStatement{};
  return std::move(r).value();
}

TEST(ParserTest, MinimalSelect) {
  SelectStatement s = Parse("SELECT name FROM country");
  ASSERT_EQ(s.select_list.size(), 1u);
  EXPECT_EQ(s.select_list[0].expr->kind, ExprKind::kColumnRef);
  EXPECT_EQ(s.select_list[0].expr->column, "name");
  ASSERT_EQ(s.from.size(), 1u);
  EXPECT_EQ(s.from[0].table, "country");
  EXPECT_FALSE(s.where);
}

TEST(ParserTest, SelectStar) {
  SelectStatement s = Parse("SELECT * FROM city");
  EXPECT_EQ(s.select_list[0].expr->kind, ExprKind::kStar);
}

TEST(ParserTest, ScopedStar) {
  SelectStatement s = Parse("SELECT c.* FROM city c");
  EXPECT_EQ(s.select_list[0].expr->kind, ExprKind::kStar);
  EXPECT_EQ(s.select_list[0].expr->table, "c");
}

TEST(ParserTest, AliasesWithAndWithoutAs) {
  SelectStatement s =
      Parse("SELECT name AS n, population pop FROM country c");
  EXPECT_EQ(s.select_list[0].alias, "n");
  EXPECT_EQ(s.select_list[1].alias, "pop");
  EXPECT_EQ(s.from[0].alias, "c");
  EXPECT_EQ(s.from[0].EffectiveAlias(), "c");
}

TEST(ParserTest, SourceQualifiers) {
  SelectStatement s = Parse(
      "SELECT c.GDP, AVG(e.salary) FROM LLM.country c, DB.Employees e "
      "WHERE c.code = e.countryCode GROUP BY e.countryCode");
  ASSERT_EQ(s.from.size(), 2u);
  EXPECT_EQ(s.from[0].source, "LLM");
  EXPECT_EQ(s.from[0].table, "country");
  EXPECT_EQ(s.from[1].source, "DB");
  EXPECT_EQ(s.from[1].table, "Employees");
  ASSERT_EQ(s.group_by.size(), 1u);
}

TEST(ParserTest, CommaJoinAndWhere) {
  SelectStatement s = Parse(
      "SELECT c.cityName, cm.birthDate FROM city c, cityMayor cm "
      "WHERE c.mayor = cm.name AND cm.electionYear = 2019");
  ASSERT_EQ(s.from.size(), 2u);
  ASSERT_TRUE(s.where != nullptr);
  EXPECT_EQ(s.where->binary_op, BinaryOp::kAnd);
}

TEST(ParserTest, ExplicitJoinOn) {
  SelectStatement s = Parse(
      "SELECT a.name FROM airport a JOIN city c ON a.city = c.name");
  ASSERT_EQ(s.joins.size(), 1u);
  EXPECT_EQ(s.joins[0].type, JoinType::kInner);
  ASSERT_TRUE(s.joins[0].condition != nullptr);
}

TEST(ParserTest, LeftJoin) {
  SelectStatement s = Parse(
      "SELECT a.name FROM airport a LEFT JOIN city c ON a.city = c.name");
  ASSERT_EQ(s.joins.size(), 1u);
  EXPECT_EQ(s.joins[0].type, JoinType::kLeft);
  SelectStatement s2 = Parse(
      "SELECT a.name FROM airport a LEFT OUTER JOIN city c ON a.city = "
      "c.name");
  EXPECT_EQ(s2.joins[0].type, JoinType::kLeft);
}

TEST(ParserTest, GroupByHavingOrderLimit) {
  SelectStatement s = Parse(
      "SELECT continent, COUNT(*) FROM country GROUP BY continent "
      "HAVING COUNT(*) > 3 ORDER BY COUNT(*) DESC, continent LIMIT 5");
  EXPECT_EQ(s.group_by.size(), 1u);
  ASSERT_TRUE(s.having != nullptr);
  ASSERT_EQ(s.order_by.size(), 2u);
  EXPECT_TRUE(s.order_by[0].descending);
  EXPECT_FALSE(s.order_by[1].descending);
  EXPECT_EQ(s.limit, 5);
}

TEST(ParserTest, Distinct) {
  SelectStatement s = Parse("SELECT DISTINCT country FROM city");
  EXPECT_TRUE(s.distinct);
}

TEST(ParserTest, CountDistinct) {
  SelectStatement s = Parse("SELECT COUNT(DISTINCT country) FROM city");
  const Expr& e = *s.select_list[0].expr;
  EXPECT_EQ(e.kind, ExprKind::kFunction);
  EXPECT_EQ(e.function_name, "COUNT");
  EXPECT_TRUE(e.distinct);
}

TEST(ParserTest, CountStar) {
  SelectStatement s = Parse("SELECT COUNT(*) FROM city");
  const Expr& e = *s.select_list[0].expr;
  EXPECT_EQ(e.kind, ExprKind::kFunction);
  ASSERT_EQ(e.children.size(), 1u);
  EXPECT_EQ(e.children[0]->kind, ExprKind::kStar);
}

TEST(ParserTest, PrecedenceAndOverOr) {
  SelectStatement s =
      Parse("SELECT name FROM t WHERE a = 1 OR b = 2 AND c = 3");
  // OR at the top, AND bound tighter.
  EXPECT_EQ(s.where->binary_op, BinaryOp::kOr);
  EXPECT_EQ(s.where->children[1]->binary_op, BinaryOp::kAnd);
}

TEST(ParserTest, PrecedenceArithmetic) {
  SelectStatement s = Parse("SELECT a + b * c FROM t");
  const Expr& e = *s.select_list[0].expr;
  EXPECT_EQ(e.binary_op, BinaryOp::kPlus);
  EXPECT_EQ(e.children[1]->binary_op, BinaryOp::kMul);
}

TEST(ParserTest, ParenthesesOverridePrecedence) {
  SelectStatement s = Parse("SELECT (a + b) * c FROM t");
  const Expr& e = *s.select_list[0].expr;
  EXPECT_EQ(e.binary_op, BinaryOp::kMul);
  EXPECT_EQ(e.children[0]->binary_op, BinaryOp::kPlus);
}

TEST(ParserTest, UnaryMinusAndNot) {
  SelectStatement s =
      Parse("SELECT name FROM t WHERE NOT a = -5");
  EXPECT_EQ(s.where->kind, ExprKind::kUnary);
  EXPECT_EQ(s.where->unary_op, UnaryOp::kNot);
}

TEST(ParserTest, BetweenInLikeIsNull) {
  SelectStatement s = Parse(
      "SELECT name FROM t WHERE a BETWEEN 1 AND 5 AND b IN ('x', 'y') "
      "AND c LIKE 'pre%' AND d IS NOT NULL");
  ASSERT_TRUE(s.where != nullptr);
  std::string rendered = s.where->ToString();
  EXPECT_NE(rendered.find("BETWEEN"), std::string::npos);
  EXPECT_NE(rendered.find("IN"), std::string::npos);
  EXPECT_NE(rendered.find("LIKE"), std::string::npos);
  EXPECT_NE(rendered.find("IS NOT NULL"), std::string::npos);
}

TEST(ParserTest, NotInAndNotBetween) {
  SelectStatement s = Parse(
      "SELECT name FROM t WHERE a NOT IN (1, 2) AND b NOT BETWEEN 3 AND "
      "4 AND c NOT LIKE 'x%'");
  EXPECT_TRUE(s.where != nullptr);
}

TEST(ParserTest, LiteralKinds) {
  SelectStatement s =
      Parse("SELECT 1, 2.5, 'txt', TRUE, FALSE, NULL FROM t");
  ASSERT_EQ(s.select_list.size(), 6u);
  EXPECT_EQ(s.select_list[0].expr->literal.type(), DataType::kInt64);
  EXPECT_EQ(s.select_list[1].expr->literal.type(), DataType::kDouble);
  EXPECT_EQ(s.select_list[2].expr->literal.type(), DataType::kString);
  EXPECT_EQ(s.select_list[3].expr->literal.type(), DataType::kBool);
  EXPECT_EQ(s.select_list[4].expr->literal.type(), DataType::kBool);
  EXPECT_TRUE(s.select_list[5].expr->literal.is_null());
}

TEST(ParserTest, TrailingSemicolonAccepted) {
  EXPECT_TRUE(ParseSelect("SELECT name FROM t;").ok());
}

TEST(ParserTest, Errors) {
  EXPECT_FALSE(ParseSelect("").ok());
  EXPECT_FALSE(ParseSelect("SELECT").ok());
  EXPECT_FALSE(ParseSelect("SELECT name").ok());           // missing FROM
  EXPECT_FALSE(ParseSelect("SELECT FROM t").ok());         // missing item
  EXPECT_FALSE(ParseSelect("SELECT a FROM t WHERE").ok()); // missing pred
  EXPECT_FALSE(ParseSelect("SELECT a FROM t GROUP a").ok());
  EXPECT_FALSE(ParseSelect("SELECT a FROM t LIMIT x").ok());
  EXPECT_FALSE(ParseSelect("SELECT a FROM t extra junk").ok());
  EXPECT_FALSE(ParseSelect("SELECT COUNT( FROM t").ok());
}

TEST(ParserTest, ErrorMessagesIncludeOffset) {
  auto r = ParseSelect("SELECT a FROM t WHERE >");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("offset"), std::string::npos);
}

TEST(ParserTest, ExprCloneIsDeep) {
  SelectStatement s =
      Parse("SELECT name FROM t WHERE a = 1 AND b LIKE 'x%'");
  ExprPtr clone = s.where->Clone();
  EXPECT_EQ(clone->ToString(), s.where->ToString());
  // Mutating the clone must not affect the original.
  clone->children[0]->binary_op = BinaryOp::kNotEq;
  EXPECT_NE(clone->ToString(), s.where->ToString());
}

TEST(ParserTest, StatementToStringRoundTripReparses) {
  const char* queries[] = {
      "SELECT name FROM country WHERE continent = 'Europe'",
      "SELECT continent, COUNT(*) FROM country GROUP BY continent",
      "SELECT c.name, m.birthDate FROM city c, cityMayor m WHERE "
      "c.mayor = m.name",
  };
  for (const char* q : queries) {
    SelectStatement s = Parse(q);
    auto reparsed = ParseSelect(s.ToString());
    ASSERT_TRUE(reparsed.ok()) << s.ToString();
    EXPECT_EQ(reparsed.value().ToString(), s.ToString());
  }
}

// Property: every workload query parses, re-renders, and re-parses to a
// fixed point.
class WorkloadParseTest : public ::testing::TestWithParam<int> {};

TEST_P(WorkloadParseTest, RoundTripsToFixedPoint) {
  static const auto* workload = []() {
    auto w = knowledge::SpiderLikeWorkload::Create();
    return new knowledge::SpiderLikeWorkload(std::move(w).value());
  }();
  const knowledge::QuerySpec* spec =
      workload->GetQuery(GetParam()).value();
  auto parsed = ParseSelect(spec->sql);
  ASSERT_TRUE(parsed.ok()) << spec->sql << " -> " << parsed.status();
  std::string rendered = parsed.value().ToString();
  auto reparsed = ParseSelect(rendered);
  ASSERT_TRUE(reparsed.ok()) << rendered;
  EXPECT_EQ(reparsed.value().ToString(), rendered);
}

INSTANTIATE_TEST_SUITE_P(All46, WorkloadParseTest,
                         ::testing::Range(1, 47));

}  // namespace
}  // namespace galois::sql
