#ifndef GALOIS_TESTS_FAKE_LLM_SERVER_H_
#define GALOIS_TESTS_FAKE_LLM_SERVER_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/result.h"
#include "llm/http_llm.h"
#include "llm/language_model.h"
#include "net/socket.h"

namespace galois::tests {

/// In-process HTTP server speaking the HttpLlm wire protocol, answering
/// from a backing LanguageModel (normally a SimulatedLlm) — the hermetic
/// stand-in for a provider API. The whole transport/resilience stack is
/// exercised over real loopback sockets in CTest with no network and no
/// live service.
///
/// Fault injection: a FIFO schedule of scripted faults (429 bursts with
/// Retry-After, 500s, stalls that trip the client timeout, malformed and
/// truncated JSON, early connection drops) is consumed one fault per
/// incoming request, before the backing model is consulted; a periodic
/// fault can poison every Nth request for sustained-degradation runs.
/// Batch replies can additionally be emitted in reversed index order to
/// prove the client reassembles by index.
///
/// Cost fidelity: the server serialises backing-model calls and ships the
/// exact CostMeter delta (tokens + modelled latency) in the response, so
/// an HttpLlm pointed at this server bills the same meter as calling the
/// backing model in-process — the e2e equivalence the acceptance test
/// checks. The serialisation only covers the answer computation
/// (sub-microsecond for SimulatedLlm); connections are still handled
/// concurrently, one thread per connection.
class FakeLlmServer {
 public:
  enum class FaultKind {
    k429,            // 429 Too Many Requests (+ Retry-After-Ms)
    k500,            // 500 Internal Server Error
    kStall,          // hold the connection silently for stall_ms, then drop
    kMalformedJson,  // 200 whose body is not valid JSON
    kTruncatedBody,  // 200 advertising more bytes than it sends
    kCloseEarly,     // drop the connection before any response bytes
  };

  struct Fault {
    FaultKind kind = FaultKind::k500;
    int64_t retry_after_ms = -1;  // k429: value for Retry-After-Ms
    int64_t stall_ms = 200;       // kStall: how long to sit silent
  };

  struct Options {
    /// Emit batch completions in reversed index order (out-of-order
    /// replies are legal in the protocol; the client must reassemble).
    bool shuffle_batch_replies = false;
    /// When > 0, every Nth request (1-based count) is served the
    /// `periodic_fault` instead of an answer — a sustained 429-burst /
    /// flaky-backend pattern that outlives any finite FIFO schedule.
    int fault_every_n = 0;
    Fault periodic_fault;
  };

  explicit FakeLlmServer(llm::LanguageModel* backing);
  FakeLlmServer(llm::LanguageModel* backing, Options options);
  ~FakeLlmServer();

  FakeLlmServer(const FakeLlmServer&) = delete;
  FakeLlmServer& operator=(const FakeLlmServer&) = delete;

  /// Binds 127.0.0.1 on an ephemeral port and starts the accept loop.
  Status Start();
  /// Stops accepting, joins every connection thread. Idempotent.
  void Stop();

  int port() const { return port_; }
  std::string host() const { return "127.0.0.1"; }

  /// Ready-made client options pointing at this server. The display name
  /// defaults to the backing model's, so meters and by_model attribution
  /// line up with an in-process run.
  llm::HttpLlmOptions ClientOptions(std::string display_name = "") const;

  /// Queues one scripted fault (FIFO, one per incoming request).
  void PushFault(Fault fault);
  /// Queues `count` copies of `fault`.
  void PushFaults(Fault fault, int count);
  size_t pending_faults() const;

  int64_t requests_seen() const { return requests_seen_.load(); }
  int64_t faults_injected() const { return faults_injected_.load(); }
  int64_t completions_served() const { return completions_served_.load(); }

 private:
  void AcceptLoop();
  void HandleConnection(int fd);
  /// Builds the 200 response body for `path`, or an error status that is
  /// reported as HTTP 400 (client-side: non-retryable).
  Result<std::string> Respond(const std::string& path,
                              const std::string& body);
  bool NextFault(Fault* fault, int64_t request_number);

  llm::LanguageModel* backing_;
  Options options_;

  net::Listener listener_;
  int port_ = 0;
  std::atomic<bool> stopping_{false};
  std::thread accept_thread_;
  // Per-connection threads. Finished workers are reaped by the accept
  // loop (they enqueue their id in finished_), so a long-lived server
  // does not accumulate one joinable-thread stack per connection; Stop()
  // joins whatever remains.
  std::mutex workers_mu_;
  std::vector<std::thread> workers_;        // guarded by workers_mu_
  std::vector<std::thread::id> finished_;   // guarded by workers_mu_

  void ReapFinishedWorkers();

  mutable std::mutex faults_mu_;
  std::deque<Fault> faults_;  // guarded by faults_mu_

  // Serialises backing calls so the per-request cost delta is exact.
  std::mutex backing_mu_;

  std::atomic<int64_t> requests_seen_{0};
  std::atomic<int64_t> faults_injected_{0};
  std::atomic<int64_t> completions_served_{0};
};

}  // namespace galois::tests

#endif  // GALOIS_TESTS_FAKE_LLM_SERVER_H_
