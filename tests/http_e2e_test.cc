// End-to-end acceptance: the full 46-query workload executed with the
// production transport stack — GaloisExecutor -> (ResilientLlm ->)
// HttpLlm -> real loopback HTTP -> FakeLlmServer -> SimulatedLlm — must
// produce byte-identical relations to the in-process model, with the
// same CostMeter on the fault-free run, and *still* zero result diffs
// when the server injects a sustained 429 burst that the resilience
// layer has to retry through.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/galois_executor.h"
#include "knowledge/workload.h"
#include "llm/http_llm.h"
#include "llm/resilience.h"
#include "llm/simulated_llm.h"
#include "tests/fake_llm_server.h"
#include "types/relation.h"

namespace galois::core {
namespace {

using galois::tests::FakeLlmServer;

const knowledge::SpiderLikeWorkload& W() {
  static const auto* w = []() {
    auto r = knowledge::SpiderLikeWorkload::Create();
    EXPECT_TRUE(r.ok());
    return new knowledge::SpiderLikeWorkload(std::move(r).value());
  }();
  return *w;
}

ExecutionOptions SuiteOptions() {
  ExecutionOptions opts;
  opts.batch_prompts = true;
  opts.max_batch_size = 8;
  opts.parallel_batches = 4;
  return opts;
}

struct SuiteRun {
  std::vector<Relation> relations;
  std::vector<llm::CostMeter> costs;
};

/// Runs every workload query through `model`, asserting success.
SuiteRun RunSuite(llm::LanguageModel* model) {
  SuiteRun run;
  GaloisExecutor executor(model, &W().catalog(), SuiteOptions());
  for (const knowledge::QuerySpec& query : W().queries()) {
    auto rm = executor.RunSql(query.sql);
    EXPECT_TRUE(rm.ok()) << "query " << query.id << " (" << query.sql
                         << "): " << rm.status().ToString();
    if (!rm.ok()) {
      run.relations.emplace_back();
      run.costs.emplace_back();
      continue;
    }
    run.relations.push_back(std::move(rm->relation));
    run.costs.push_back(std::move(rm->cost));
  }
  return run;
}

SuiteRun RunSuiteInProcess() {
  llm::SimulatedLlm model(&W().kb(), llm::ModelProfile::ChatGpt(),
                          &W().catalog(), 7);
  return RunSuite(&model);
}

void ExpectZeroResultDiffs(const SuiteRun& expected, const SuiteRun& actual,
                           const char* label) {
  ASSERT_EQ(expected.relations.size(), actual.relations.size());
  for (size_t i = 0; i < expected.relations.size(); ++i) {
    EXPECT_TRUE(expected.relations[i].SameContents(actual.relations[i]))
        << label << ": query " << W().queries()[i].id << " ("
        << W().queries()[i].sql << ") diverged";
  }
}

TEST(HttpEndToEndTest, FullSuiteOverLoopbackMatchesInProcess) {
  llm::SimulatedLlm backing(&W().kb(), llm::ModelProfile::ChatGpt(),
                            &W().catalog(), 7);
  FakeLlmServer server(&backing);
  ASSERT_TRUE(server.Start().ok());
  llm::HttpLlm http(server.ClientOptions());

  SuiteRun over_http = RunSuite(&http);
  SuiteRun in_process = RunSuiteInProcess();
  ExpectZeroResultDiffs(in_process, over_http, "loopback");

  // Identical billing, query by query: real usage from the wire equals
  // the in-process meter (latency is accumulated in completion order
  // under parallel dispatch, hence the FP tolerance).
  ASSERT_EQ(in_process.costs.size(), over_http.costs.size());
  for (size_t i = 0; i < in_process.costs.size(); ++i) {
    EXPECT_EQ(in_process.costs[i].num_prompts, over_http.costs[i].num_prompts)
        << i;
    EXPECT_EQ(in_process.costs[i].num_batches, over_http.costs[i].num_batches)
        << i;
    EXPECT_EQ(in_process.costs[i].prompt_tokens,
              over_http.costs[i].prompt_tokens)
        << i;
    EXPECT_EQ(in_process.costs[i].completion_tokens,
              over_http.costs[i].completion_tokens)
        << i;
    EXPECT_NEAR(in_process.costs[i].simulated_latency_ms,
                over_http.costs[i].simulated_latency_ms,
                1e-6 * (1.0 + in_process.costs[i].simulated_latency_ms))
        << i;
  }
  EXPECT_GT(server.completions_served(), 0);
}

TEST(HttpEndToEndTest, FullSuiteSurvivesScripted429Burst) {
  llm::SimulatedLlm backing(&W().kb(), llm::ModelProfile::ChatGpt(),
                            &W().catalog(), 7);
  FakeLlmServer::Options server_options;
  // A sustained burst: every 6th request is rejected with 429 +
  // Retry-After for the whole suite.
  server_options.fault_every_n = 6;
  server_options.periodic_fault = {FakeLlmServer::FaultKind::k429, 3, 0};
  FakeLlmServer server(&backing, server_options);
  ASSERT_TRUE(server.Start().ok());

  llm::HttpLlm http(server.ClientOptions());
  llm::ResilienceOptions resilience;
  resilience.max_retries = 5;
  resilience.initial_backoff_ms = 2;
  resilience.max_backoff_ms = 50;
  llm::ResilientLlm resilient(&http, resilience);

  SuiteRun under_burst = RunSuite(&resilient);
  SuiteRun in_process = RunSuiteInProcess();
  ExpectZeroResultDiffs(in_process, under_burst, "429 burst");

  // The burst really happened and really was retried through.
  EXPECT_GT(server.faults_injected(), 0);
  EXPECT_GT(resilient.stats().retries, 0);
  EXPECT_EQ(resilient.stats().deadline_exceeded, 0);
}

}  // namespace
}  // namespace galois::core
