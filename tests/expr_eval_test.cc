// Unit tests for the expression evaluator: literals, refs, arithmetic,
// three-valued logic, LIKE, BETWEEN, IN, IS NULL, aggregate environments.

#include <gtest/gtest.h>

#include "engine/expr_eval.h"
#include "sql/parser.h"

namespace galois::engine {
namespace {

using sql::ParseSelect;

Schema TestSchema() {
  return Schema({Column("name", DataType::kString, "t"),
                 Column("pop", DataType::kInt64, "t"),
                 Column("gdp", DataType::kDouble, "t"),
                 Column("maybe", DataType::kInt64, "t")});
}

Tuple TestRow() {
  return {Value::String("Rome"), Value::Int(2800000), Value::Double(2.1),
          Value::Null()};
}

/// Evaluates the WHERE expression of "SELECT x FROM t WHERE <pred>".
Value EvalWhere(const std::string& pred, const AggregateEnv* env = nullptr) {
  auto stmt = ParseSelect("SELECT name FROM t WHERE " + pred);
  EXPECT_TRUE(stmt.ok()) << stmt.status();
  auto v = EvalExpr(*stmt.value().where, TestSchema(), TestRow(), env);
  EXPECT_TRUE(v.ok()) << pred << " -> " << v.status();
  return v.value_or(Value::Null());
}

TEST(ExprEvalTest, ColumnRefQualifiedAndNot) {
  EXPECT_EQ(EvalWhere("name = 'Rome'"), Value::Bool(true));
  EXPECT_EQ(EvalWhere("t.name = 'Rome'"), Value::Bool(true));
  EXPECT_EQ(EvalWhere("t.name = 'Paris'"), Value::Bool(false));
}

TEST(ExprEvalTest, NumericComparisons) {
  EXPECT_EQ(EvalWhere("pop > 1000000"), Value::Bool(true));
  EXPECT_EQ(EvalWhere("pop <= 1000000"), Value::Bool(false));
  EXPECT_EQ(EvalWhere("gdp >= 2.1"), Value::Bool(true));
  EXPECT_EQ(EvalWhere("pop != 2800000"), Value::Bool(false));
}

TEST(ExprEvalTest, Arithmetic) {
  EXPECT_EQ(EvalWhere("pop + 1 = 2800001"), Value::Bool(true));
  EXPECT_EQ(EvalWhere("pop * 2 = 5600000"), Value::Bool(true));
  EXPECT_EQ(EvalWhere("pop - 2800000 = 0"), Value::Bool(true));
  EXPECT_EQ(EvalWhere("pop % 7 = 2800000 % 7"), Value::Bool(true));
  // Division always yields double.
  EXPECT_EQ(EvalWhere("pop / 2 = 1400000"), Value::Bool(true));
}

TEST(ExprEvalTest, DivisionByZeroIsNull) {
  EXPECT_TRUE(EvalWhere("pop / 0 = 1").is_null());
  EXPECT_TRUE(EvalWhere("pop % 0 = 1").is_null());
}

TEST(ExprEvalTest, NullPropagation) {
  EXPECT_TRUE(EvalWhere("maybe + 1 = 2").is_null());
  EXPECT_TRUE(EvalWhere("maybe = maybe").is_null());
  EXPECT_TRUE(EvalWhere("maybe > 0").is_null());
}

TEST(ExprEvalTest, ThreeValuedAndOr) {
  // false AND NULL = false; true AND NULL = NULL.
  EXPECT_EQ(EvalWhere("pop < 0 AND maybe = 1"), Value::Bool(false));
  EXPECT_TRUE(EvalWhere("pop > 0 AND maybe = 1").is_null());
  // true OR NULL = true; false OR NULL = NULL.
  EXPECT_EQ(EvalWhere("pop > 0 OR maybe = 1"), Value::Bool(true));
  EXPECT_TRUE(EvalWhere("pop < 0 OR maybe = 1").is_null());
}

TEST(ExprEvalTest, NotSemantics) {
  EXPECT_EQ(EvalWhere("NOT pop > 0"), Value::Bool(false));
  EXPECT_TRUE(EvalWhere("NOT maybe = 1").is_null());
}

TEST(ExprEvalTest, UnaryNegate) {
  EXPECT_EQ(EvalWhere("-pop = -2800000"), Value::Bool(true));
  EXPECT_EQ(EvalWhere("-gdp < 0"), Value::Bool(true));
}

TEST(ExprEvalTest, Between) {
  EXPECT_EQ(EvalWhere("pop BETWEEN 1000000 AND 3000000"),
            Value::Bool(true));
  EXPECT_EQ(EvalWhere("pop BETWEEN 1 AND 2"), Value::Bool(false));
  EXPECT_TRUE(EvalWhere("maybe BETWEEN 1 AND 2").is_null());
}

TEST(ExprEvalTest, InList) {
  EXPECT_EQ(EvalWhere("name IN ('Paris', 'Rome')"), Value::Bool(true));
  EXPECT_EQ(EvalWhere("name IN ('Paris', 'Berlin')"), Value::Bool(false));
  EXPECT_EQ(EvalWhere("name NOT IN ('Paris')"), Value::Bool(true));
  // NULL in the list keeps the unknown semantics when no match found.
  EXPECT_TRUE(EvalWhere("name IN ('Paris', NULL)").is_null());
  EXPECT_EQ(EvalWhere("name IN ('Rome', NULL)"), Value::Bool(true));
}

TEST(ExprEvalTest, IsNull) {
  EXPECT_EQ(EvalWhere("maybe IS NULL"), Value::Bool(true));
  EXPECT_EQ(EvalWhere("maybe IS NOT NULL"), Value::Bool(false));
  EXPECT_EQ(EvalWhere("name IS NULL"), Value::Bool(false));
}

TEST(ExprEvalTest, LikeOperator) {
  EXPECT_EQ(EvalWhere("name LIKE 'Ro%'"), Value::Bool(true));
  EXPECT_EQ(EvalWhere("name LIKE 'R_me'"), Value::Bool(true));
  EXPECT_EQ(EvalWhere("name LIKE 'Ro'"), Value::Bool(false));
  EXPECT_EQ(EvalWhere("name LIKE '%e'"), Value::Bool(true));
}

TEST(ExprEvalTest, LikeMatchFunction) {
  EXPECT_TRUE(LikeMatch("", ""));
  EXPECT_TRUE(LikeMatch("", "%"));
  EXPECT_FALSE(LikeMatch("", "_"));
  EXPECT_TRUE(LikeMatch("abc", "%"));
  EXPECT_TRUE(LikeMatch("abc", "a%c"));
  EXPECT_TRUE(LikeMatch("abbbc", "a%c"));
  EXPECT_FALSE(LikeMatch("abd", "a%c"));
  EXPECT_TRUE(LikeMatch("abc", "___"));
  EXPECT_FALSE(LikeMatch("abc", "__"));
  EXPECT_TRUE(LikeMatch("a%b", "a%b"));
}

TEST(ExprEvalTest, AggregateEnvLookup) {
  AggregateEnv env;
  env["COUNT(*)"] = Value::Int(5);
  EXPECT_EQ(EvalWhere("COUNT(*) > 3", &env), Value::Bool(true));
  EXPECT_EQ(EvalWhere("COUNT(*) + 1 = 6", &env), Value::Bool(true));
}

TEST(ExprEvalTest, AggregateWithoutEnvIsError) {
  auto stmt = ParseSelect("SELECT name FROM t WHERE COUNT(*) > 3");
  ASSERT_TRUE(stmt.ok());
  auto v = EvalExpr(*stmt.value().where, TestSchema(), TestRow(), nullptr);
  EXPECT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kExecutionError);
}

TEST(ExprEvalTest, UnknownColumnIsBindError) {
  auto stmt = ParseSelect("SELECT name FROM t WHERE nosuch = 1");
  ASSERT_TRUE(stmt.ok());
  auto v = EvalExpr(*stmt.value().where, TestSchema(), TestRow());
  EXPECT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kBindError);
}

TEST(ExprEvalTest, PredicateCollapsesNullToFalse) {
  auto stmt = ParseSelect("SELECT name FROM t WHERE maybe > 0");
  ASSERT_TRUE(stmt.ok());
  auto keep = EvalPredicate(*stmt.value().where, TestSchema(), TestRow());
  ASSERT_TRUE(keep.ok());
  EXPECT_FALSE(keep.value());
}

TEST(ExprEvalTest, LikeOnNonStringIsTypeError) {
  auto stmt = ParseSelect("SELECT name FROM t WHERE pop LIKE 'x%'");
  ASSERT_TRUE(stmt.ok());
  auto v = EvalExpr(*stmt.value().where, TestSchema(), TestRow());
  EXPECT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kTypeError);
}

}  // namespace
}  // namespace galois::engine
