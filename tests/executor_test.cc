// Integration tests for the ground-truth SQL executor over catalog
// instances, including a parameterized run of all 46 workload queries.

#include <gtest/gtest.h>

#include "engine/executor.h"
#include "knowledge/workload.h"
#include "sql/parser.h"

namespace galois::engine {
namespace {

const knowledge::SpiderLikeWorkload& Workload() {
  static const auto* w = []() {
    auto r = knowledge::SpiderLikeWorkload::Create();
    EXPECT_TRUE(r.ok()) << r.status();
    return new knowledge::SpiderLikeWorkload(std::move(r).value());
  }();
  return *w;
}

Relation RunSql(const std::string& sql) {
  auto r = ExecuteSql(sql, Workload().catalog());
  EXPECT_TRUE(r.ok()) << sql << " -> " << r.status();
  return r.value_or(Relation());
}

TEST(ExecutorTest, SimpleProjection) {
  Relation r = RunSql("SELECT name FROM country WHERE name = 'Italy'");
  ASSERT_EQ(r.NumRows(), 1u);
  EXPECT_EQ(r.At(0, 0).string_value(), "Italy");
}

TEST(ExecutorTest, SelectionFilters) {
  Relation europe = RunSql("SELECT name FROM country WHERE continent = 'Europe'");
  Relation all = RunSql("SELECT name FROM country");
  EXPECT_GT(europe.NumRows(), 0u);
  EXPECT_LT(europe.NumRows(), all.NumRows());
}

TEST(ExecutorTest, SelectStarExpandsAllColumns) {
  Relation r = RunSql("SELECT * FROM language");
  EXPECT_EQ(r.NumColumns(), 3u);
  EXPECT_GT(r.NumRows(), 0u);
}

TEST(ExecutorTest, ScopedStar) {
  Relation r = RunSql(
      "SELECT co.* FROM country co, language la WHERE co.language = "
      "la.name AND co.name = 'Italy'");
  EXPECT_EQ(r.NumColumns(), 11u);  // all country columns only
  ASSERT_EQ(r.NumRows(), 1u);
}

TEST(ExecutorTest, OrderByAndLimit) {
  Relation r = RunSql(
      "SELECT name, population FROM country ORDER BY population DESC "
      "LIMIT 3");
  ASSERT_EQ(r.NumRows(), 3u);
  EXPECT_GE(r.At(0, 1).int_value(), r.At(1, 1).int_value());
  EXPECT_GE(r.At(1, 1).int_value(), r.At(2, 1).int_value());
}

TEST(ExecutorTest, OrderByAlias) {
  Relation r = RunSql(
      "SELECT name, population AS p FROM country ORDER BY p LIMIT 2");
  ASSERT_EQ(r.NumRows(), 2u);
  EXPECT_LE(r.At(0, 1).int_value(), r.At(1, 1).int_value());
}

TEST(ExecutorTest, DistinctCollapses) {
  Relation with = RunSql("SELECT DISTINCT continent FROM country");
  Relation without = RunSql("SELECT continent FROM country");
  EXPECT_LT(with.NumRows(), without.NumRows());
}

TEST(ExecutorTest, ScalarAggregate) {
  Relation r = RunSql("SELECT COUNT(*) FROM country");
  ASSERT_EQ(r.NumRows(), 1u);
  EXPECT_EQ(r.At(0, 0).int_value(), 48);
}

TEST(ExecutorTest, GroupByWithHaving) {
  Relation r = RunSql(
      "SELECT continent, COUNT(*) FROM country GROUP BY continent "
      "HAVING COUNT(*) > 5");
  EXPECT_GT(r.NumRows(), 0u);
  for (const Tuple& row : r.rows()) {
    EXPECT_GT(row[1].int_value(), 5);
  }
}

TEST(ExecutorTest, GroupByOrderByAggregate) {
  Relation r = RunSql(
      "SELECT continent, COUNT(*) FROM country GROUP BY continent "
      "ORDER BY COUNT(*) DESC");
  ASSERT_GT(r.NumRows(), 1u);
  for (size_t i = 1; i < r.NumRows(); ++i) {
    EXPECT_GE(r.At(i - 1, 1).int_value(), r.At(i, 1).int_value());
  }
}

TEST(ExecutorTest, CommaJoinWithPredicate) {
  Relation r = RunSql(
      "SELECT ci.name, co.continent FROM city ci, country co "
      "WHERE ci.country = co.name AND co.name = 'Italy'");
  ASSERT_EQ(r.NumRows(), 3u);  // Rome, Milan, Naples
  for (const Tuple& row : r.rows()) {
    EXPECT_EQ(row[1].string_value(), "Europe");
  }
}

TEST(ExecutorTest, ExplicitJoinOn) {
  Relation comma = RunSql(
      "SELECT a.name, ci.country FROM airport a, city ci WHERE a.city = "
      "ci.name");
  Relation join = RunSql(
      "SELECT a.name, ci.country FROM airport a JOIN city ci ON a.city = "
      "ci.name");
  EXPECT_TRUE(comma.SameContents(join));
}

TEST(ExecutorTest, LeftJoinKeepsUnmatched) {
  // Left join airports to a city filter that cannot match.
  Relation r = RunSql(
      "SELECT a.code, ci.name FROM airport a LEFT JOIN city ci "
      "ON a.city = ci.name AND ci.population < 0");
  Relation airports = RunSql("SELECT code FROM airport");
  EXPECT_EQ(r.NumRows(), airports.NumRows());
  for (const Tuple& row : r.rows()) {
    EXPECT_TRUE(row[1].is_null());
  }
}

TEST(ExecutorTest, ThreeWayJoin) {
  Relation r = RunSql(
      "SELECT co.continent, a.code FROM airport a, city ci, country co "
      "WHERE a.city = ci.name AND ci.country = co.name AND "
      "co.name = 'Japan'");
  EXPECT_EQ(r.NumRows(), 2u);  // HND (Tokyo) and KIX (Osaka)
}

TEST(ExecutorTest, ExpressionInSelectList) {
  Relation r = RunSql(
      "SELECT name, population / 1000000 FROM country WHERE name = "
      "'Italy'");
  ASSERT_EQ(r.NumRows(), 1u);
  EXPECT_GT(r.At(0, 1).double_value(), 0.0);
}

TEST(ExecutorTest, CountDistinct) {
  Relation r = RunSql("SELECT COUNT(DISTINCT continent) FROM country");
  ASSERT_EQ(r.NumRows(), 1u);
  EXPECT_EQ(r.At(0, 0).int_value(), 6);
}

TEST(ExecutorTest, AggregateDistinctVsPlain) {
  Relation plain = RunSql("SELECT COUNT(country) FROM city");
  Relation distinct = RunSql("SELECT COUNT(DISTINCT country) FROM city");
  EXPECT_GT(plain.At(0, 0).int_value(), distinct.At(0, 0).int_value());
}

TEST(ExecutorTest, UnknownTableError) {
  EXPECT_FALSE(ExecuteSql("SELECT x FROM nosuch", Workload().catalog())
                   .ok());
}

TEST(ExecutorTest, UnknownColumnError) {
  EXPECT_FALSE(
      ExecuteSql("SELECT nosuch FROM country", Workload().catalog()).ok());
}

TEST(ExecutorTest, HybridQueryJoinsDbTable) {
  Relation r = RunSql(
      "SELECT c.gdp, AVG(e.salary) FROM LLM.country c, DB.Employees e "
      "WHERE c.code = e.countryCode GROUP BY c.name");
  EXPECT_GT(r.NumRows(), 0u);
  for (const Tuple& row : r.rows()) {
    EXPECT_FALSE(row[0].is_null());
    EXPECT_GT(row[1].double_value(), 0.0);
  }
}

// Property: each of the 46 workload queries executes and yields the
// expected schema arity; deterministic across repeated runs.
class WorkloadExecutionTest : public ::testing::TestWithParam<int> {};

TEST_P(WorkloadExecutionTest, ExecutesDeterministically) {
  const knowledge::QuerySpec* spec =
      Workload().GetQuery(GetParam()).value();
  auto a = ExecuteSql(spec->sql, Workload().catalog());
  ASSERT_TRUE(a.ok()) << spec->sql << " -> " << a.status();
  auto b = ExecuteSql(spec->sql, Workload().catalog());
  ASSERT_TRUE(b.ok());
  EXPECT_TRUE(a->SameContents(*b));
  auto stmt = sql::ParseSelect(spec->sql);
  ASSERT_TRUE(stmt.ok());
  EXPECT_EQ(a->NumColumns(), stmt.value().select_list.size());
  // Non-grouped aggregates always return exactly one row.
  bool scalar_agg = stmt.value().group_by.empty();
  for (const auto& item : stmt.value().select_list) {
    scalar_agg = scalar_agg && sql::ContainsAggregate(*item.expr);
  }
  if (scalar_agg) {
    EXPECT_EQ(a->NumRows(), 1u);
  }
}

INSTANTIATE_TEST_SUITE_P(All46, WorkloadExecutionTest,
                         ::testing::Range(1, 47));

}  // namespace
}  // namespace galois::engine
