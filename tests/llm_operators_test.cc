// Tests for the LLM physical operators: key scan paging/termination,
// attribute retrieval + cleaning, filter checks.

#include <gtest/gtest.h>

#include "core/llm_operators.h"
#include "knowledge/workload.h"
#include "llm/simulated_llm.h"

namespace galois::core {
namespace {

const knowledge::SpiderLikeWorkload& W() {
  static const auto* w = []() {
    auto r = knowledge::SpiderLikeWorkload::Create();
    EXPECT_TRUE(r.ok());
    return new knowledge::SpiderLikeWorkload(std::move(r).value());
  }();
  return *w;
}

const catalog::TableDef& CountryDef() {
  return *W().catalog().GetTable("country").value();
}

llm::ModelProfile FullCoverage() {
  llm::ModelProfile p = llm::ModelProfile::ChatGpt();
  p.coverage_floor = 1.0;
  p.coverage_gain = 0.0;
  p.paging_fatigue = 0.0;
  p.hallucinated_key_rate = 0.0;
  p.unknown_rate = 0.0;
  p.fact_accuracy = 1.0;
  p.numeric_fact_accuracy = 1.0;
  p.value_format_noise = 0.0;
  p.reference_style_noise = 0.0;
  p.verbosity = 0.0;
  p.filter_check_error = 0.0;
  p.pushdown_error = 0.0;
  return p;
}

TEST(LlmKeyScanTest, FullCoverageRetrievesAllKeys) {
  llm::SimulatedLlm model(&W().kb(), FullCoverage(), nullptr, 7);
  ExecutionOptions opts;
  auto keys = LlmKeyScan(&model, CountryDef(), opts);
  ASSERT_TRUE(keys.ok()) << keys.status();
  EXPECT_EQ(keys->size(),
            W().kb().FindConcept("country")->entities.size());
}

TEST(LlmKeyScanTest, KeysAreUnique) {
  llm::SimulatedLlm model(&W().kb(), llm::ModelProfile::Gpt3(),
                          nullptr, 7);
  ExecutionOptions opts;
  auto keys = LlmKeyScan(&model, CountryDef(), opts);
  ASSERT_TRUE(keys.ok());
  std::set<std::string> unique(keys->begin(), keys->end());
  EXPECT_EQ(unique.size(), keys->size());
}

TEST(LlmKeyScanTest, FatigueTruncatesScan) {
  llm::ModelProfile tired = FullCoverage();
  tired.paging_fatigue = 0.9;
  tired.page_size = 5;
  llm::SimulatedLlm model(&W().kb(), tired, nullptr, 7);
  ExecutionOptions opts;
  auto keys = LlmKeyScan(&model, CountryDef(), opts);
  ASSERT_TRUE(keys.ok());
  EXPECT_LT(keys->size(),
            W().kb().FindConcept("country")->entities.size());
}

TEST(LlmKeyScanTest, MaxPagesBoundsPromptCount) {
  llm::SimulatedLlm model(&W().kb(), FullCoverage(), nullptr, 7);
  ExecutionOptions opts;
  opts.max_scan_pages = 1;
  auto keys = LlmKeyScan(&model, CountryDef(), opts);
  ASSERT_TRUE(keys.ok());
  EXPECT_LE(keys->size(), static_cast<size_t>(FullCoverage().page_size));
  EXPECT_EQ(model.cost().num_prompts, 1);
}

TEST(LlmKeyScanTest, PushedFilterRestrictsKeys) {
  llm::SimulatedLlm model(&W().kb(), FullCoverage(), nullptr, 7);
  ExecutionOptions opts;
  llm::PromptFilter filter;
  filter.attribute = "continent";
  filter.op = "=";
  filter.value = Value::String("Africa");
  auto keys = LlmKeyScan(&model, CountryDef(), opts, filter);
  ASSERT_TRUE(keys.ok());
  EXPECT_EQ(keys->size(), 5u);  // exactly the African countries
}

TEST(LlmGetAttributeTest, RetrievesAndCleans) {
  llm::SimulatedLlm model(&W().kb(), FullCoverage(), nullptr, 7);
  ExecutionOptions opts;
  const catalog::ColumnDef* capital =
      CountryDef().FindColumn("capital").value();
  auto v = LlmGetAttribute(&model, CountryDef(), "France", *capital, opts);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.value(), Value::String("Paris"));

  const catalog::ColumnDef* pop =
      CountryDef().FindColumn("population").value();
  auto p = LlmGetAttribute(&model, CountryDef(), "France", *pop, opts);
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p.value().type(), DataType::kInt64);
}

TEST(LlmGetAttributeTest, NoisyFormatsStillTyped) {
  llm::ModelProfile noisy = FullCoverage();
  noisy.value_format_noise = 1.0;
  noisy.verbosity = 1.0;
  llm::SimulatedLlm model(&W().kb(), noisy, nullptr, 7);
  ExecutionOptions opts;
  const catalog::ColumnDef* pop =
      CountryDef().FindColumn("population").value();
  for (const char* country : {"Italy", "Japan", "Kenya"}) {
    auto v = LlmGetAttribute(&model, CountryDef(), country, *pop, opts);
    ASSERT_TRUE(v.ok());
    ASSERT_FALSE(v.value().is_null()) << country;
    EXPECT_EQ(v.value().type(), DataType::kInt64) << country;
  }
}

TEST(LlmGetAttributeTest, CleaningDisabledReturnsRawString) {
  llm::ModelProfile noisy = FullCoverage();
  noisy.value_format_noise = 1.0;
  llm::SimulatedLlm model(&W().kb(), noisy, nullptr, 7);
  ExecutionOptions opts;
  opts.enable_cleaning = false;
  const catalog::ColumnDef* pop =
      CountryDef().FindColumn("population").value();
  auto v = LlmGetAttribute(&model, CountryDef(), "Italy", *pop, opts);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.value().type(), DataType::kString);
}

TEST(LlmGetAttributeTest, UnknownEntityGivesNull) {
  llm::ModelProfile humble = FullCoverage();
  humble.coverage_floor = 0.0;
  humble.fake_entity_confidence = 0.0;
  llm::SimulatedLlm model(&W().kb(), humble, nullptr, 7);
  ExecutionOptions opts;
  const catalog::ColumnDef* capital =
      CountryDef().FindColumn("capital").value();
  auto v = LlmGetAttribute(&model, CountryDef(), "France", *capital, opts);
  ASSERT_TRUE(v.ok());
  EXPECT_TRUE(v.value().is_null());
}

TEST(LlmFilterCheckTest, AnswersMatchTruthWithPerfectModel) {
  llm::SimulatedLlm model(&W().kb(), FullCoverage(), nullptr, 7);
  llm::PromptFilter europe;
  europe.attribute = "continent";
  europe.op = "=";
  europe.value = Value::String("Europe");
  EXPECT_EQ(
      LlmFilterCheck(&model, CountryDef(), "Italy", europe).value(), 1);
  EXPECT_EQ(
      LlmFilterCheck(&model, CountryDef(), "Japan", europe).value(), 0);
}

TEST(LlmFilterCheckTest, NumericComparisons) {
  llm::SimulatedLlm model(&W().kb(), FullCoverage(), nullptr, 7);
  Value truth =
      W().kb().GetAttribute("country", "Italy", "population").value();
  llm::PromptFilter above;
  above.attribute = "population";
  above.op = ">";
  above.value = Value::Int(truth.int_value() - 1);
  EXPECT_EQ(LlmFilterCheck(&model, CountryDef(), "Italy", above).value(),
            1);
  above.op = "<";
  EXPECT_EQ(LlmFilterCheck(&model, CountryDef(), "Italy", above).value(),
            0);
}

TEST(LlmFilterCheckTest, UnknownEntityGivesMinusOne) {
  llm::ModelProfile humble = FullCoverage();
  humble.coverage_floor = 0.0;
  humble.fake_entity_confidence = 0.0;
  llm::SimulatedLlm model(&W().kb(), humble, nullptr, 7);
  llm::PromptFilter europe;
  europe.attribute = "continent";
  europe.op = "=";
  europe.value = Value::String("Europe");
  EXPECT_EQ(
      LlmFilterCheck(&model, CountryDef(), "Italy", europe).value(), -1);
}

}  // namespace
}  // namespace galois::core
