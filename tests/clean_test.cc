// Unit + parameterized tests for the cleaning layer (Section 4's
// normalisation of LLM answers into typed CELL values).

#include <gtest/gtest.h>

#include "clean/normalize.h"

namespace galois::clean {
namespace {

TEST(CleanTest, IsUnknownVariants) {
  EXPECT_TRUE(IsUnknown("Unknown"));
  EXPECT_TRUE(IsUnknown("unknown."));
  EXPECT_TRUE(IsUnknown("  UNKNOWN  "));
  EXPECT_TRUE(IsUnknown("N/A"));
  EXPECT_TRUE(IsUnknown(""));
  EXPECT_FALSE(IsUnknown("Rome"));
}

TEST(CleanTest, IsNoMoreResults) {
  EXPECT_TRUE(IsNoMoreResults("No more results."));
  EXPECT_TRUE(IsNoMoreResults("no more results"));
  EXPECT_TRUE(IsNoMoreResults("None"));
  EXPECT_FALSE(IsNoMoreResults("Rome, Paris"));
}

TEST(CleanTest, StripVerbosity) {
  EXPECT_EQ(StripVerbosity("The population of Rome is 2.8 million."),
            "2.8 million");
  EXPECT_EQ(StripVerbosity("The capital of France is Paris."), "Paris");
  EXPECT_EQ(StripVerbosity("Paris"), "Paris");
  EXPECT_EQ(StripVerbosity("42"), "42");
}

TEST(CleanTest, SplitListCommaSeparated) {
  auto items = SplitList("Rome, Paris, Berlin");
  ASSERT_EQ(items.size(), 3u);
  EXPECT_EQ(items[0], "Rome");
  EXPECT_EQ(items[2], "Berlin");
}

TEST(CleanTest, SplitListBulleted) {
  auto items = SplitList("- Rome\n- Paris\n* Berlin");
  ASSERT_EQ(items.size(), 3u);
  EXPECT_EQ(items[1], "Paris");
}

TEST(CleanTest, SplitListDropsMarkersAndEmpties) {
  auto items = SplitList("Rome,, Paris\nNo more results.\nUnknown");
  ASSERT_EQ(items.size(), 2u);
}

TEST(CleanTest, SplitListStripsTrailingPunctuation) {
  auto items = SplitList("Rome., Paris!");
  ASSERT_EQ(items.size(), 2u);
  EXPECT_EQ(items[0], "Rome");
  EXPECT_EQ(items[1], "Paris");
}

struct NumberCase {
  const char* text;
  double expected;
};

class ParseNumberTest : public ::testing::TestWithParam<NumberCase> {};

TEST_P(ParseNumberTest, ParsesNoisyFormat) {
  auto r = ParseNumber(GetParam().text);
  ASSERT_TRUE(r.ok()) << GetParam().text << " -> " << r.status();
  EXPECT_DOUBLE_EQ(r.value(), GetParam().expected) << GetParam().text;
}

INSTANTIATE_TEST_SUITE_P(
    Formats, ParseNumberTest,
    ::testing::Values(
        NumberCase{"42", 42.0}, NumberCase{"-7", -7.0},
        NumberCase{"3.5", 3.5}, NumberCase{"1,234,567", 1234567.0},
        NumberCase{"1.2k", 1200.0}, NumberCase{"3M", 3000000.0},
        NumberCase{"0.5B", 500000000.0}, NumberCase{"2 million", 2000000.0},
        NumberCase{"450 thousand", 450000.0},
        NumberCase{"1.1 billion", 1100000000.0},
        NumberCase{"about 120", 120.0}, NumberCase{"~45", 45.0},
        NumberCase{"$300", 300.0}, NumberCase{"approximately 88", 88.0},
        NumberCase{"1200.", 1200.0}, NumberCase{"  64  ", 64.0}));

TEST(ParseNumberErrors, RejectsNonNumbers) {
  EXPECT_FALSE(ParseNumber("Rome").ok());
  EXPECT_FALSE(ParseNumber("").ok());
  EXPECT_FALSE(ParseNumber("twelve").ok());
  EXPECT_FALSE(ParseNumber("12 apples").ok());
}

struct DateCase {
  const char* text;
  int64_t packed;
};

class ParseDateTest : public ::testing::TestWithParam<DateCase> {};

TEST_P(ParseDateTest, ParsesNoisyFormat) {
  auto r = ParseDate(GetParam().text);
  ASSERT_TRUE(r.ok()) << GetParam().text << " -> " << r.status();
  EXPECT_EQ(r.value().date_packed(), GetParam().packed)
      << GetParam().text;
}

INSTANTIATE_TEST_SUITE_P(
    Formats, ParseDateTest,
    ::testing::Values(DateCase{"1962-08-04", 19620804},
                      DateCase{"August 4, 1962", 19620804},
                      DateCase{"4 August 1962", 19620804},
                      DateCase{"04/08/1962", 19620804},
                      DateCase{"December 7, 1960", 19601207},
                      DateCase{"1 January 2000", 20000101}));

TEST(ParseDateErrors, RejectsNonDates) {
  EXPECT_FALSE(ParseDate("Rome").ok());
  EXPECT_FALSE(ParseDate("13/13/1990").ok());
  EXPECT_FALSE(ParseDate("").ok());
}

TEST(CleanTest, ParseBool) {
  EXPECT_TRUE(ParseBool("Yes.").value());
  EXPECT_TRUE(ParseBool("yes").value());
  EXPECT_TRUE(ParseBool("TRUE").value());
  EXPECT_FALSE(ParseBool("No.").value());
  EXPECT_FALSE(ParseBool("false").value());
  EXPECT_FALSE(ParseBool("maybe").ok());
}

TEST(NormalizeCellTest, UnknownBecomesNull) {
  EXPECT_TRUE(NormalizeCell("Unknown", DataType::kInt64).value().is_null());
  EXPECT_TRUE(
      NormalizeCell("Unknown", DataType::kString).value().is_null());
}

TEST(NormalizeCellTest, IntParsingWithFormats) {
  EXPECT_EQ(NormalizeCell("2.8M", DataType::kInt64).value(),
            Value::Int(2800000));
  EXPECT_EQ(NormalizeCell("1,234", DataType::kInt64).value(),
            Value::Int(1234));
}

TEST(NormalizeCellTest, VerboseWrapperStripped) {
  EXPECT_EQ(NormalizeCell("The population of Rome is 2.8M.",
                          DataType::kInt64)
                .value(),
            Value::Int(2800000));
  EXPECT_EQ(NormalizeCell("The capital of France is Paris.",
                          DataType::kString)
                .value(),
            Value::String("Paris"));
}

TEST(NormalizeCellTest, UnparseableNumericBecomesNull) {
  EXPECT_TRUE(
      NormalizeCell("lots", DataType::kInt64).value().is_null());
}

TEST(NormalizeCellTest, DomainConstraintRejectsOutliers) {
  DomainConstraint year{1000.0, 2100.0};
  EXPECT_EQ(NormalizeCell("1984", DataType::kInt64, &year).value(),
            Value::Int(1984));
  EXPECT_TRUE(
      NormalizeCell("98765", DataType::kInt64, &year).value().is_null());
  EXPECT_TRUE(
      NormalizeCell("12", DataType::kInt64, &year).value().is_null());
}

TEST(NormalizeCellTest, DateAndBool) {
  EXPECT_EQ(NormalizeCell("August 4, 1962", DataType::kDate).value(),
            Value::Date(1962, 8, 4));
  EXPECT_EQ(NormalizeCell("Yes.", DataType::kBool).value(),
            Value::Bool(true));
  EXPECT_TRUE(NormalizeCell("not a date", DataType::kDate)
                  .value()
                  .is_null());
}

TEST(NormalizeCellTest, StringTrimsPunctuation) {
  EXPECT_EQ(NormalizeCell(" Rome. ", DataType::kString).value(),
            Value::String("Rome"));
}

TEST(DomainTest, DefaultDomains) {
  DomainConstraint year = DefaultDomainForColumn("independenceYear");
  EXPECT_TRUE(year.min.has_value());
  EXPECT_TRUE(year.max.has_value());
  EXPECT_FALSE(year.Admits(999.0));
  EXPECT_TRUE(year.Admits(1990.0));

  DomainConstraint age = DefaultDomainForColumn("age");
  EXPECT_FALSE(age.Admits(-1.0));
  EXPECT_FALSE(age.Admits(200.0));

  DomainConstraint pop = DefaultDomainForColumn("population");
  EXPECT_FALSE(pop.Admits(-5.0));
  EXPECT_TRUE(pop.Admits(1e9));
  EXPECT_FALSE(pop.max.has_value());

  // Elevation may be negative; names unconstrained.
  EXPECT_TRUE(DefaultDomainForColumn("elevation").Admits(-100.0));
  EXPECT_FALSE(DefaultDomainForColumn("name").min.has_value());
}

TEST(DomainTest, UnconstrainedAdmitsEverything) {
  DomainConstraint d;
  EXPECT_TRUE(d.Admits(-1e18));
  EXPECT_TRUE(d.Admits(1e18));
}

}  // namespace
}  // namespace galois::clean
