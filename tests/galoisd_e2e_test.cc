// galoisd's acceptance contract, end to end over real loopback sockets:
// the full 46-query workload run through GaloisServer + GaloisClient is
// byte-identical to the in-process facade — same relation renderings,
// same per-query CostMeters, same cache/prefetch counters — and the
// daemon honours its operational promises: transport faults behind the
// LLM backend are retried transparently, a client vanishing mid-query
// costs exactly one unsent response, graceful drain finishes in-flight
// work while rejecting queued admissions retryably, admission control
// sheds load beyond the queue, client deadlines cancel server-side, and
// a daemon restart over a persistent store re-bills nothing.
//
// Everything is hermetic: servers run in-process on ephemeral loopback
// ports; the LLM behind the daemon is the SimulatedLlm (optionally via
// FakeLlmServer for HTTP fault injection).

#include <gtest/gtest.h>

#include <sys/socket.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "api/database.h"
#include "knowledge/workload.h"
#include "llm/http_llm.h"
#include "llm/simulated_llm.h"
#include "net/frame.h"
#include "net/galois_client.h"
#include "net/galois_server.h"
#include "net/protocol.h"
#include "net/socket.h"
#include "tests/fake_llm_server.h"

namespace galois {
namespace {

using net::ClientOptions;
using net::GaloisClient;
using net::GaloisServer;
using net::ServerOptions;
using net::ServerStats;
using tests::FakeLlmServer;

const knowledge::SpiderLikeWorkload& W() {
  static const auto* w = []() {
    auto r = knowledge::SpiderLikeWorkload::Create();
    EXPECT_TRUE(r.ok());
    return new knowledge::SpiderLikeWorkload(std::move(r).value());
  }();
  return *w;
}

std::string StoreDir(const std::string& name) {
  std::string dir = ::testing::TempDir() + "galoisd_e2e_" + name;
  std::remove((dir + "/galois.store").c_str());
  std::remove((dir + "/galois.store.tmp").c_str());
  std::remove(dir.c_str());
  return dir;
}

/// A Database over the builtin simulated backend — the exact
/// configuration the in-process e2e suites use, so wire-vs-facade
/// comparisons hold query by query.
std::unique_ptr<Database> OpenSimDb(bool table_cache = true) {
  DatabaseOptions options;
  options.workload = &W();
  options.enable_materialisation_cache = table_cache;
  auto db = Database::Open(std::move(options));
  EXPECT_TRUE(db.ok()) << db.status().ToString();
  return std::move(db).value();
}

GaloisClient ConnectTo(int port) {
  ClientOptions copt;
  copt.port = port;
  auto client = GaloisClient::Connect(copt);
  EXPECT_TRUE(client.ok()) << client.status().ToString();
  return std::move(client).value();
}

/// Spins until `pred(stats)` holds or ~5s elapse; returns the final
/// snapshot either way (asserting on it gives a readable failure).
template <typename Pred>
ServerStats AwaitStats(const GaloisServer& server, Pred pred) {
  for (int i = 0; i < 500; ++i) {
    ServerStats s = server.stats();
    if (pred(s)) return s;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return server.stats();
}

/// Delay decorator: every round trip sleeps for `delay_ms` before
/// reaching the backing model. Gives the daemon genuinely long-running
/// queries so drain/admission/disconnect windows are deterministic.
class SlowLlm : public llm::LanguageModel {
 public:
  SlowLlm(llm::LanguageModel* inner, int64_t delay_ms)
      : inner_(inner), delay_ms_(delay_ms) {}

  const std::string& name() const override { return inner_->name(); }

  Result<llm::Completion> Complete(const llm::Prompt& prompt) override {
    Nap();
    return inner_->Complete(prompt);
  }
  Result<std::vector<llm::Completion>> CompleteBatch(
      const std::vector<llm::Prompt>& prompts) override {
    Nap();
    return inner_->CompleteBatch(prompts);
  }
  Result<llm::Completion> CompleteMetered(const llm::Prompt& prompt,
                                          llm::CostMeter* usage) override {
    Nap();
    return inner_->CompleteMetered(prompt, usage);
  }
  Result<std::vector<llm::Completion>> CompleteBatchMetered(
      const std::vector<llm::Prompt>& prompts,
      llm::CostMeter* usage) override {
    Nap();
    return inner_->CompleteBatchMetered(prompts, usage);
  }
  llm::CostMeter cost() const override { return inner_->cost(); }
  void ResetCost() override { inner_->ResetCost(); }

 private:
  void Nap() const {
    std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms_));
  }

  llm::LanguageModel* inner_;
  int64_t delay_ms_;
};

/// A Database whose single backend is a SlowLlm over a fresh
/// SimulatedLlm. The pieces are parked in `keep` so they outlive the
/// Database (external backends are borrowed).
std::unique_ptr<Database> OpenSlowDb(
    int64_t delay_ms,
    std::vector<std::shared_ptr<llm::LanguageModel>>* keep) {
  auto sim = std::make_shared<llm::SimulatedLlm>(
      &W().kb(), llm::ModelProfile::ChatGpt(), &W().catalog(), /*seed=*/7);
  auto slow = std::make_shared<SlowLlm>(sim.get(), delay_ms);
  keep->push_back(sim);
  keep->push_back(slow);
  DatabaseOptions options;
  options.workload = &W();
  BackendSpec spec;
  spec.name = "slow";
  spec.external = slow.get();
  options.backends.push_back(std::move(spec));
  options.enable_materialisation_cache = false;
  // One batched round trip per retrieval phase: the per-trip delay adds
  // up to a few hundred ms per query, not minutes.
  options.execution.batch_prompts = true;
  options.execution.max_batch_size = 0;
  auto db = Database::Open(std::move(options));
  EXPECT_TRUE(db.ok()) << db.status().ToString();
  return std::move(db).value();
}

// ---------------------------------------------------------------------
// The headline: byte-identical over the wire.
// ---------------------------------------------------------------------

TEST(GaloisdE2eTest, WorkloadByteIdenticalOverTheWireVsInProcess) {
  // Two Databases opened with identical options: one queried through
  // the facade, one behind a daemon. Separate instances so neither
  // run's caches can launder the other's results.
  auto local_db = OpenSimDb();
  auto wire_db = OpenSimDb();
  GaloisServer server(wire_db.get(), ServerOptions());
  ASSERT_TRUE(server.Start().ok());

  Session local = local_db->CreateSession();
  GaloisClient client = ConnectTo(server.port());

  for (const knowledge::QuerySpec& query : W().queries()) {
    auto expected = local.Query(query.sql);
    ASSERT_TRUE(expected.ok()) << "q" << query.id << ": "
                               << expected.status();
    auto got = client.Query(query.sql);
    ASSERT_TRUE(got.ok()) << "q" << query.id << ": " << got.status();

    // Relations: the exact CSV rendering, not just set equality.
    EXPECT_EQ(got->relation.ToCsv(), expected->relation.ToCsv())
        << "q" << query.id << " diverged over the wire";

    // Per-query cost meters, field by field. Latency is a double sum
    // accumulated in a different order under concurrency, so compare
    // with a relative tolerance; everything else is integral.
    EXPECT_EQ(got->cost.num_prompts, expected->cost.num_prompts)
        << "q" << query.id;
    EXPECT_EQ(got->cost.num_batches, expected->cost.num_batches)
        << "q" << query.id;
    EXPECT_EQ(got->cost.prompt_tokens, expected->cost.prompt_tokens)
        << "q" << query.id;
    EXPECT_EQ(got->cost.completion_tokens, expected->cost.completion_tokens)
        << "q" << query.id;
    EXPECT_EQ(got->cost.cache_hits, expected->cost.cache_hits)
        << "q" << query.id;
    EXPECT_NEAR(got->cost.simulated_latency_ms,
                expected->cost.simulated_latency_ms,
                1e-6 * (1.0 + expected->cost.simulated_latency_ms))
        << "q" << query.id;

    // Cache and prefetch counters travel too.
    EXPECT_EQ(got->table_cache_lookups, expected->table_cache_lookups)
        << "q" << query.id;
    EXPECT_EQ(got->table_cache_hits, expected->table_cache_hits)
        << "q" << query.id;
    EXPECT_EQ(got->table_cache_exact_hits, expected->table_cache_exact_hits)
        << "q" << query.id;
    EXPECT_EQ(got->table_cache_subsumption_hits,
              expected->table_cache_subsumption_hits)
        << "q" << query.id;
    EXPECT_EQ(got->scan_pages_prefetched, expected->scan_pages_prefetched)
        << "q" << query.id;
    EXPECT_EQ(got->scan_pages_overfetched, expected->scan_pages_overfetched)
        << "q" << query.id;

    // The plan report and wall clock travel (values are machine-local).
    EXPECT_FALSE(got->physical_plan.empty()) << "q" << query.id;
    EXPECT_GE(got->wall_ms, 0.0) << "q" << query.id;
  }

  const size_t n = W().queries().size();
  ServerStats stats = server.stats();
  EXPECT_EQ(stats.queries_started, static_cast<int64_t>(n));
  EXPECT_EQ(stats.queries_ok, static_cast<int64_t>(n));
  EXPECT_EQ(stats.queries_error, 0);
  EXPECT_EQ(stats.queries_rejected, 0);
  // The daemon's spend equals the facade's for the identical run.
  EXPECT_EQ(stats.spend.num_prompts,
            local_db->model()->cost().num_prompts);

  server.Shutdown();
}

// ---------------------------------------------------------------------
// Failures travel as their original Status; the connection survives.
// ---------------------------------------------------------------------

TEST(GaloisdE2eTest, QueryErrorTravelsAndConnectionStaysUsable) {
  auto db = OpenSimDb();
  GaloisServer server(db.get(), ServerOptions());
  ASSERT_TRUE(server.Start().ok());
  GaloisClient client = ConnectTo(server.port());

  auto bad = client.Query("THIS IS NOT SQL");
  ASSERT_FALSE(bad.ok());
  EXPECT_FALSE(llm::IsRetryableLlmError(bad.status()))
      << "a deterministic parse failure must not invite retries: "
      << bad.status();

  // Same connection, next query: fine.
  EXPECT_TRUE(client.Ping().ok());
  auto good = client.Query(W().queries()[0].sql);
  EXPECT_TRUE(good.ok()) << good.status();

  ServerStats stats = server.stats();
  EXPECT_EQ(stats.queries_error, 1);
  EXPECT_EQ(stats.queries_ok, 1);
  server.Shutdown();
}

// ---------------------------------------------------------------------
// Transport faults behind the daemon are retried transparently.
// ---------------------------------------------------------------------

TEST(GaloisdE2eTest, TruncatedLlmResponseIsRetriedTransparently) {
  // The daemon's backend is an HttpLlm pointed at a FakeLlmServer that
  // truncates every 5th response body mid-flight (Content-Length lies).
  // The resilience decorator must classify those as retryable transport
  // faults and re-issue them — the client of the *daemon* never sees
  // any of it.
  llm::SimulatedLlm backing(&W().kb(), llm::ModelProfile::ChatGpt(),
                            &W().catalog(), /*seed=*/7);
  FakeLlmServer::Options fake_options;
  fake_options.fault_every_n = 5;
  fake_options.periodic_fault.kind = FakeLlmServer::FaultKind::kTruncatedBody;
  FakeLlmServer fake(&backing, fake_options);
  ASSERT_TRUE(fake.Start().ok());

  DatabaseOptions options;
  options.workload = &W();
  BackendSpec spec;
  spec.name = "http";
  spec.http = fake.ClientOptions();
  llm::ResilienceOptions resilience;
  resilience.max_retries = 5;
  resilience.initial_backoff_ms = 2;
  resilience.max_backoff_ms = 50;
  spec.resilience = resilience;
  options.backends.push_back(std::move(spec));
  options.enable_materialisation_cache = false;
  auto db = Database::Open(std::move(options));
  ASSERT_TRUE(db.ok()) << db.status().ToString();

  GaloisServer server(db.value().get(), ServerOptions());
  ASSERT_TRUE(server.Start().ok());
  GaloisClient client = ConnectTo(server.port());

  // Baseline: the same queries against the facade's simulated backend.
  auto baseline_db = OpenSimDb(/*table_cache=*/false);
  Session baseline = baseline_db->CreateSession();

  for (size_t i = 0; i < 8 && i < W().queries().size(); ++i) {
    const knowledge::QuerySpec& query = W().queries()[i];
    auto expected = baseline.Query(query.sql);
    ASSERT_TRUE(expected.ok()) << "q" << query.id;
    auto got = client.Query(query.sql);
    ASSERT_TRUE(got.ok()) << "q" << query.id
                          << " should have been retried transparently: "
                          << got.status();
    EXPECT_EQ(got->relation.ToCsv(), expected->relation.ToCsv())
        << "q" << query.id;
  }
  EXPECT_GT(fake.faults_injected(), 0)
      << "the fault schedule never fired — the test proved nothing";
  EXPECT_EQ(server.stats().queries_error, 0);

  server.Shutdown();
  fake.Stop();
}

// ---------------------------------------------------------------------
// A client vanishing mid-query costs one unsent response, nothing more.
// ---------------------------------------------------------------------

TEST(GaloisdE2eTest, MidFlightClientDisconnectLeavesDaemonServing) {
  std::vector<std::shared_ptr<llm::LanguageModel>> keep;
  auto db = OpenSlowDb(/*delay_ms=*/300, &keep);
  GaloisServer server(db.get(), ServerOptions());
  ASSERT_TRUE(server.Start().ok());

  // Raw protocol client: send one query, then reset the connection
  // while the server is still executing it. SO_LINGER(0) turns close()
  // into an immediate RST, so by the time the (slow) query finishes the
  // server's response write deterministically fails.
  {
    auto fd = net::ConnectTcp("127.0.0.1", server.port(), 2000);
    ASSERT_TRUE(fd.ok()) << fd.status().ToString();
    net::QueryRequest request;
    request.sql = W().queries()[0].sql;
    ASSERT_TRUE(net::WriteFrame(fd.value().get(), net::FrameType::kQuery,
                                net::QueryRequestToJson(request).Dump(),
                                net::NowMs() + 2000)
                    .ok());
    // Give the server time to read the frame and start the query (the
    // query itself takes >= 300ms), then reset.
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    struct linger hard_close;
    hard_close.l_onoff = 1;
    hard_close.l_linger = 0;
    ASSERT_EQ(::setsockopt(fd.value().get(), SOL_SOCKET, SO_LINGER,
                           &hard_close, sizeof(hard_close)),
              0);
  }  // fd closes here -> RST

  // The abandoned query still runs to completion and its unsendable
  // response is counted — and the daemon keeps serving everyone else.
  ServerStats stats =
      AwaitStats(server, [](const ServerStats& s) {
        return s.responses_unsent >= 1;
      });
  EXPECT_EQ(stats.responses_unsent, 1);

  GaloisClient client = ConnectTo(server.port());
  EXPECT_TRUE(client.Ping().ok());
  auto result = client.Query(W().queries()[1].sql);
  EXPECT_TRUE(result.ok()) << result.status();

  server.Shutdown();
}

// ---------------------------------------------------------------------
// Graceful drain: in-flight queries finish, queued ones are rejected
// retryably, new connections are refused.
// ---------------------------------------------------------------------

TEST(GaloisdE2eTest, DrainFinishesInFlightAndRejectsQueued) {
  std::vector<std::shared_ptr<llm::LanguageModel>> keep;
  auto db = OpenSlowDb(/*delay_ms=*/400, &keep);
  ServerOptions server_options;
  server_options.max_in_flight = 1;
  server_options.queue_capacity = 8;
  GaloisServer server(db.get(), server_options);
  ASSERT_TRUE(server.Start().ok());
  const int port = server.port();

  // A: occupies the single execution slot for >= 400ms.
  Result<QueryResult> result_a = Status::ExecutionError("never ran");
  std::thread thread_a([&] {
    GaloisClient client = ConnectTo(port);
    result_a = client.Query(W().queries()[0].sql);
  });
  AwaitStats(server, [](const ServerStats& s) { return s.in_flight == 1; });

  // B: waits in the admission queue behind A.
  Result<QueryResult> result_b = Status::ExecutionError("never ran");
  std::thread thread_b([&] {
    GaloisClient client = ConnectTo(port);
    result_b = client.Query(W().queries()[1].sql);
  });
  ServerStats queued_stats =
      AwaitStats(server, [](const ServerStats& s) { return s.queued == 1; });
  ASSERT_EQ(queued_stats.queued, 1) << "B never queued";

  // Drain: A must finish cleanly, B must be rejected with a retryable
  // error (it never started — safe to replay elsewhere).
  server.Shutdown();
  thread_a.join();
  thread_b.join();

  EXPECT_TRUE(result_a.ok())
      << "in-flight query killed by drain: " << result_a.status();
  ASSERT_FALSE(result_b.ok()) << "queued query should have been rejected";
  EXPECT_TRUE(llm::IsRetryableLlmError(result_b.status()))
      << "drain rejection must be marked retryable: " << result_b.status();

  // Drained daemon accepts no new connections.
  ClientOptions copt;
  copt.port = port;
  copt.connect_timeout_ms = 200;
  EXPECT_FALSE(GaloisClient::Connect(copt).ok());

  ServerStats stats = server.stats();
  EXPECT_TRUE(stats.draining);
  EXPECT_EQ(stats.queries_ok, 1);
  EXPECT_GE(stats.queries_rejected, 1);
}

// ---------------------------------------------------------------------
// Admission control beyond the queue sheds load retryably.
// ---------------------------------------------------------------------

TEST(GaloisdE2eTest, AdmissionRejectsBeyondQueueCapacity) {
  std::vector<std::shared_ptr<llm::LanguageModel>> keep;
  auto db = OpenSlowDb(/*delay_ms=*/400, &keep);
  ServerOptions server_options;
  server_options.max_in_flight = 1;
  server_options.queue_capacity = 0;  // reject the instant the slot is taken
  GaloisServer server(db.get(), server_options);
  ASSERT_TRUE(server.Start().ok());
  const int port = server.port();

  Result<QueryResult> result_a = Status::ExecutionError("never ran");
  std::thread thread_a([&] {
    GaloisClient client = ConnectTo(port);
    result_a = client.Query(W().queries()[0].sql);
  });
  AwaitStats(server, [](const ServerStats& s) { return s.in_flight == 1; });

  GaloisClient client = ConnectTo(port);
  auto rejected = client.Query(W().queries()[1].sql);
  ASSERT_FALSE(rejected.ok()) << "should have been shed, queue_capacity=0";
  EXPECT_TRUE(llm::IsRetryableLlmError(rejected.status()))
      << rejected.status();
  // The connection survives rejection; the client may simply retry later.
  EXPECT_TRUE(client.Ping().ok());

  thread_a.join();
  EXPECT_TRUE(result_a.ok()) << result_a.status();
  EXPECT_GE(server.stats().queries_rejected, 1);
  server.Shutdown();
}

// ---------------------------------------------------------------------
// Client deadlines are armed server-side, where the work is.
// ---------------------------------------------------------------------

TEST(GaloisdE2eTest, ClientDeadlineCancelsQueryServerSide) {
  std::vector<std::shared_ptr<llm::LanguageModel>> keep;
  auto db = OpenSlowDb(/*delay_ms=*/400, &keep);
  GaloisServer server(db.get(), ServerOptions());
  ASSERT_TRUE(server.Start().ok());
  GaloisClient client = ConnectTo(server.port());

  auto result = client.Query(W().queries()[0].sql, /*deadline_ms=*/50);
  ASSERT_FALSE(result.ok()) << "a 50ms deadline cannot fit a 400ms backend";
  // The server answered with an error frame (the transport stayed
  // healthy), carrying the cancellation outcome.
  EXPECT_NE(result.status().code(), StatusCode::kIoError)
      << result.status();
  EXPECT_TRUE(client.connected());
  EXPECT_TRUE(client.Ping().ok());

  server.Shutdown();
}

// ---------------------------------------------------------------------
// Restarting the daemon over a persistent store re-bills nothing.
// ---------------------------------------------------------------------

TEST(GaloisdE2eTest, DaemonRestartOverStoreIsByteIdenticalWithZeroRespend) {
  const std::string dir = StoreDir("restart");

  auto open_store_db = [&](llm::LanguageModel* transport) {
    DatabaseOptions options;
    options.workload = &W();
    BackendSpec spec;
    spec.name = "sim";
    spec.external = transport;
    spec.prompt_cache = true;  // completions must be captured to persist
    options.backends.push_back(std::move(spec));
    options.enable_materialisation_cache = true;
    options.store.path = dir;
    options.store.background_vacuum = false;  // deterministic
    auto db = Database::Open(std::move(options));
    EXPECT_TRUE(db.ok()) << db.status().ToString();
    return std::move(db).value();
  };
  auto make_transport = [] {
    return llm::SimulatedLlm(&W().kb(), llm::ModelProfile::ChatGpt(),
                             &W().catalog(), /*seed=*/7);
  };

  // --- daemon incarnation 1: the paying run ---------------------------
  std::vector<std::string> cold_csv;
  {
    llm::SimulatedLlm transport = make_transport();
    auto db = open_store_db(&transport);
    GaloisServer server(db.get(), ServerOptions());
    ASSERT_TRUE(server.Start().ok());
    GaloisClient client = ConnectTo(server.port());
    for (const knowledge::QuerySpec& query : W().queries()) {
      auto result = client.Query(query.sql);
      ASSERT_TRUE(result.ok()) << "q" << query.id << ": " << result.status();
      cold_csv.push_back(result->relation.ToCsv());
    }
    EXPECT_GT(transport.cost().num_prompts, 0);
    // Graceful shutdown flushes the store (SIGTERM path in galoisd).
    server.Shutdown();
  }  // Database destroyed = daemon process exit.

  // --- daemon incarnation 2: warm start over the same directory -------
  llm::SimulatedLlm transport = make_transport();
  auto db = open_store_db(&transport);
  GaloisServer server(db.get(), ServerOptions());
  ASSERT_TRUE(server.Start().ok());
  GaloisClient client = ConnectTo(server.port());
  size_t i = 0;
  for (const knowledge::QuerySpec& query : W().queries()) {
    auto result = client.Query(query.sql);
    ASSERT_TRUE(result.ok()) << "q" << query.id << ": " << result.status();
    EXPECT_EQ(result->relation.ToCsv(), cold_csv[i])
        << "q" << query.id << " diverged after daemon restart";
    EXPECT_EQ(result->cost.num_prompts, 0)
        << "q" << query.id << " paid the LLM again";
    ++i;
  }
  // The transport-level meter no cache can fake: zero round trips, for
  // the entire workload, across the wire.
  EXPECT_EQ(transport.cost().num_prompts, 0);

  ServerStats stats = server.stats();
  EXPECT_TRUE(stats.store_attached);
  EXPECT_GT(stats.table_cache_store_hits, 0);
  server.Shutdown();
}

// ---------------------------------------------------------------------
// The stats endpoint and liveness probe.
// ---------------------------------------------------------------------

TEST(GaloisdE2eTest, StatsEndpointReportsTheCounterBlock) {
  auto db = OpenSimDb();
  GaloisServer server(db.get(), ServerOptions());
  ASSERT_TRUE(server.Start().ok());
  GaloisClient client = ConnectTo(server.port());

  ASSERT_TRUE(client.Ping().ok());
  for (size_t i = 0; i < 3; ++i) {
    ASSERT_TRUE(client.Query(W().queries()[i].sql).ok());
  }

  // Over the wire — the same snapshot BuildStats() serves in-process.
  auto remote = client.Stats();
  ASSERT_TRUE(remote.ok()) << remote.status().ToString();
  EXPECT_EQ(remote->queries_started, 3);
  EXPECT_EQ(remote->queries_ok, 3);
  EXPECT_EQ(remote->queries_error, 0);
  EXPECT_GE(remote->connections_accepted, 1);
  EXPECT_GE(remote->uptime_ms, 0);
  EXPECT_FALSE(remote->draining);
  EXPECT_FALSE(remote->store_attached);
  EXPECT_GT(remote->spend.num_prompts, 0);
  EXPECT_GT(remote->total_wall_ms, 0.0);
  EXPECT_GE(remote->max_wall_ms, 0.0);
  // The human rendering CI scrapes carries the headline counters.
  const std::string rendered = remote->ToString();
  EXPECT_NE(rendered.find("queries_ok"), std::string::npos);
  EXPECT_NE(rendered.find("galoisd statistics"), std::string::npos);

  server.Shutdown();
}

}  // namespace
}  // namespace galois
