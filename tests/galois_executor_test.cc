// Integration tests for the Galois executor: LLM-backed SPJA execution,
// hybrid queries, ablation options, and a parameterized schema-contract
// property over all 46 workload queries.

#include <gtest/gtest.h>

#include "core/galois_executor.h"
#include "engine/executor.h"
#include "knowledge/workload.h"
#include "llm/prompt_cache.h"
#include "llm/simulated_llm.h"
#include "sql/parser.h"

namespace galois::core {
namespace {

const knowledge::SpiderLikeWorkload& W() {
  static const auto* w = []() {
    auto r = knowledge::SpiderLikeWorkload::Create();
    EXPECT_TRUE(r.ok());
    return new knowledge::SpiderLikeWorkload(std::move(r).value());
  }();
  return *w;
}

/// A profile with no noise at all: Galois over it must match the ground
/// truth exactly, which isolates executor bugs from model noise.
llm::ModelProfile PerfectProfile() {
  llm::ModelProfile p = llm::ModelProfile::ChatGpt();
  p.name = "perfect";
  p.coverage_floor = 1.0;
  p.coverage_gain = 0.0;
  p.unknown_rate = 0.0;
  p.fake_entity_confidence = 0.0;
  p.fact_accuracy = 1.0;
  p.numeric_fact_accuracy = 1.0;
  p.reference_style_noise = 0.0;
  p.value_format_noise = 0.0;
  p.verbosity = 0.0;
  p.paging_fatigue = 0.0;
  p.hallucinated_key_rate = 0.0;
  p.pushdown_error = 0.0;
  p.filter_check_error = 0.0;
  return p;
}

class GaloisExecutorTest : public ::testing::Test {
 protected:
  GaloisExecutorTest()
      : perfect_(&W().kb(), PerfectProfile(), &W().catalog(), 7),
        noisy_(&W().kb(), llm::ModelProfile::ChatGpt(), &W().catalog(), 7) {}

  llm::SimulatedLlm perfect_;
  llm::SimulatedLlm noisy_;
};

TEST_F(GaloisExecutorTest, PerfectModelMatchesGroundTruthSelection) {
  GaloisExecutor galois(&perfect_, &W().catalog());
  const char* sql = "SELECT name FROM country WHERE continent = 'Europe'";
  auto rm = galois.ExecuteSql(sql);
  auto rd = engine::ExecuteSql(sql, W().catalog());
  ASSERT_TRUE(rm.ok()) << rm.status();
  ASSERT_TRUE(rd.ok());
  EXPECT_TRUE(rm->SameContents(*rd));
}

TEST_F(GaloisExecutorTest, PerfectModelMatchesGroundTruthAggregate) {
  GaloisExecutor galois(&perfect_, &W().catalog());
  const char* sql =
      "SELECT continent, COUNT(*) FROM country GROUP BY continent";
  auto rm = galois.ExecuteSql(sql);
  auto rd = engine::ExecuteSql(sql, W().catalog());
  ASSERT_TRUE(rm.ok()) << rm.status();
  EXPECT_TRUE(rm->SameContents(*rd));
}

TEST_F(GaloisExecutorTest, PerfectModelMatchesGroundTruthJoin) {
  GaloisExecutor galois(&perfect_, &W().catalog());
  const char* sql =
      "SELECT ci.name, co.continent FROM city ci, country co "
      "WHERE ci.country = co.name";
  auto rm = galois.ExecuteSql(sql);
  auto rd = engine::ExecuteSql(sql, W().catalog());
  ASSERT_TRUE(rm.ok()) << rm.status();
  EXPECT_TRUE(rm->SameContents(*rd));
}

TEST_F(GaloisExecutorTest, PerfectModelMatchesGroundTruthDates) {
  GaloisExecutor galois(&perfect_, &W().catalog());
  const char* sql =
      "SELECT c.name, cm.birthDate FROM city c, cityMayor cm "
      "WHERE c.mayor = cm.name AND cm.electionYear = 2019";
  auto rm = galois.ExecuteSql(sql);
  auto rd = engine::ExecuteSql(sql, W().catalog());
  ASSERT_TRUE(rm.ok()) << rm.status();
  EXPECT_TRUE(rm->SameContents(*rd));
}

TEST_F(GaloisExecutorTest, OutputSchemaMatchesGroundTruthByConstruction) {
  // Paper: "all output relations have the expected schema ... obtained by
  // construction from the execution of the query plan".
  GaloisExecutor galois(&noisy_, &W().catalog());
  for (int id : {1, 17, 21, 32, 40}) {
    const knowledge::QuerySpec* spec = W().GetQuery(id).value();
    auto rm = galois.ExecuteSql(spec->sql);
    auto rd = engine::ExecuteSql(spec->sql, W().catalog());
    ASSERT_TRUE(rm.ok()) << spec->sql << " -> " << rm.status();
    ASSERT_TRUE(rd.ok());
    ASSERT_EQ(rm->NumColumns(), rd->NumColumns()) << spec->sql;
    for (size_t c = 0; c < rd->NumColumns(); ++c) {
      EXPECT_EQ(rm->schema().column(c).name, rd->schema().column(c).name);
    }
  }
}

TEST_F(GaloisExecutorTest, CostTrackedPerQuery) {
  GaloisExecutor galois(&noisy_, &W().catalog());
  auto first = galois.RunSql(
      "SELECT name FROM country WHERE continent = 'Europe'");
  ASSERT_TRUE(first.ok());
  EXPECT_GT(first->cost.num_prompts, 10);  // scan pages + per-key checks
  auto second = galois.RunSql(
      "SELECT capital FROM country WHERE name = 'France'");
  ASSERT_TRUE(second.ok());
  EXPECT_GT(second->cost.num_prompts, 0);
  EXPECT_LT(second->cost.num_prompts, first->cost.num_prompts * 3);
}

TEST_F(GaloisExecutorTest, PushdownReducesPrompts) {
  ExecutionOptions plain;
  GaloisExecutor galois_plain(&noisy_, &W().catalog(), plain);
  const char* sql = "SELECT name FROM city WHERE population > 5000000";
  auto plain_out = galois_plain.RunSql(sql);
  ASSERT_TRUE(plain_out.ok());
  int64_t prompts_plain = plain_out->cost.num_prompts;

  ExecutionOptions pushdown;
  pushdown.pushdown_policy = PushdownPolicy::kAlways;
  GaloisExecutor galois_push(&noisy_, &W().catalog(), pushdown);
  auto push_out = galois_push.RunSql(sql);
  ASSERT_TRUE(push_out.ok());
  int64_t prompts_push = push_out->cost.num_prompts;

  // Pushing the selection into the scan removes the per-key filter
  // prompts (Section 6).
  EXPECT_LT(prompts_push, prompts_plain / 2);
}

TEST_F(GaloisExecutorTest, CleaningOffKeepsRawStrings) {
  ExecutionOptions raw;
  raw.enable_cleaning = false;
  raw.llm_filter_checks = true;
  GaloisExecutor galois(&noisy_, &W().catalog(), raw);
  auto rm = galois.ExecuteSql(
      "SELECT name, population FROM country WHERE continent = 'Europe'");
  ASSERT_TRUE(rm.ok()) << rm.status();
  size_t pop_idx = 1;
  int strings = 0;
  for (const Tuple& row : rm->rows()) {
    if (row[pop_idx].type() == DataType::kString) ++strings;
  }
  // Without cleaning the numeric column stays textual.
  EXPECT_GT(strings, 0);
}

TEST_F(GaloisExecutorTest, DomainEnforcementRejectsOutliers) {
  // A model that always hallucinates years wildly: domains must null them.
  llm::ModelProfile wild = PerfectProfile();
  wild.fact_accuracy = 1.0;
  llm::SimulatedLlm model(&W().kb(), wild, &W().catalog(), 7);
  ExecutionOptions opts;
  opts.enforce_domains = true;
  GaloisExecutor galois(&model, &W().catalog(), opts);
  auto rm = galois.ExecuteSql(
      "SELECT name, foundedYear FROM airline WHERE foundedYear < 1940");
  ASSERT_TRUE(rm.ok());
  for (const Tuple& row : rm->rows()) {
    if (!row[1].is_null()) {
      EXPECT_GE(row[1].int_value(), 1000);
      EXPECT_LE(row[1].int_value(), 2100);
    }
  }
}

TEST_F(GaloisExecutorTest, EngineSideFiltersWhenLlmChecksDisabled) {
  ExecutionOptions engine_side;
  engine_side.llm_filter_checks = false;
  GaloisExecutor galois(&perfect_, &W().catalog(), engine_side);
  const char* sql = "SELECT name FROM country WHERE continent = 'Europe'";
  auto rm = galois.ExecuteSql(sql);
  auto rd = engine::ExecuteSql(sql, W().catalog());
  ASSERT_TRUE(rm.ok()) << rm.status();
  EXPECT_TRUE(rm->SameContents(*rd));
}

TEST_F(GaloisExecutorTest, HybridLlmDbJoin) {
  GaloisExecutor galois(&perfect_, &W().catalog());
  auto rm = galois.RunSql(
      "SELECT c.gdp, AVG(e.salary) FROM LLM.country c, DB.Employees e "
      "WHERE c.code = e.countryCode GROUP BY c.name");
  ASSERT_TRUE(rm.ok()) << rm.status();
  auto rd = engine::ExecuteSql(
      "SELECT c.gdp, AVG(e.salary) FROM country c, Employees e "
      "WHERE c.code = e.countryCode GROUP BY c.name",
      W().catalog());
  ASSERT_TRUE(rd.ok());
  EXPECT_TRUE(rm->relation.SameContents(*rd));
  // The DB side must not consume prompts: only country attrs prompted.
  EXPECT_GT(rm->cost.num_prompts, 0);
}

TEST_F(GaloisExecutorTest, DbOnlyQueryIssuesNoPrompts) {
  GaloisExecutor galois(&noisy_, &W().catalog());
  auto rm = galois.RunSql(
      "SELECT COUNT(*) FROM DB.Employees e WHERE e.salary > 0");
  ASSERT_TRUE(rm.ok()) << rm.status();
  EXPECT_EQ(rm->cost.num_prompts, 0);
}

TEST_F(GaloisExecutorTest, ExplicitLlmSourceOverridesDefault) {
  // Employees defaults to DB; forcing LLM should fail the key scan since
  // "employee" is not a KB concept -> NotFound.
  GaloisExecutor galois(&noisy_, &W().catalog());
  auto rm = galois.ExecuteSql("SELECT name FROM LLM.Employees");
  EXPECT_FALSE(rm.ok());
}

TEST_F(GaloisExecutorTest, UnknownSourceQualifierRejected) {
  GaloisExecutor galois(&noisy_, &W().catalog());
  auto r = galois.ExecuteSql("SELECT name FROM WEB.country");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kBindError);
}

TEST_F(GaloisExecutorTest, PromptCacheCutsRepeatedWork) {
  llm::SimulatedLlm inner(&W().kb(), llm::ModelProfile::ChatGpt(),
                          &W().catalog(), 7);
  llm::PromptCache cached(&inner);
  GaloisExecutor galois(&cached, &W().catalog());
  const char* sql = "SELECT name, capital FROM country WHERE continent = "
                    "'Asia'";
  ASSERT_TRUE(galois.ExecuteSql(sql).ok());
  int64_t first_prompts = inner.cost().num_prompts;
  ASSERT_TRUE(galois.ExecuteSql(sql).ok());
  // Second execution is answered fully from the cache.
  EXPECT_EQ(inner.cost().num_prompts, first_prompts);
  EXPECT_GT(cached.cost().cache_hits, 0);
}

TEST_F(GaloisExecutorTest, DeterministicAcrossRuns) {
  GaloisExecutor a(&noisy_, &W().catalog());
  llm::SimulatedLlm other(&W().kb(), llm::ModelProfile::ChatGpt(),
                          &W().catalog(), 7);
  GaloisExecutor b(&other, &W().catalog());
  const char* sql = "SELECT name FROM singer WHERE genre = 'pop'";
  auto ra = a.ExecuteSql(sql);
  auto rb = b.ExecuteSql(sql);
  ASSERT_TRUE(ra.ok());
  ASSERT_TRUE(rb.ok());
  EXPECT_TRUE(ra->SameContents(*rb));
}

TEST_F(GaloisExecutorTest, AmbiguousConjunctIsNeverSilentlyDropped) {
  // Regression: city and country both define a `population` column, so
  // the unqualified ref below is ambiguous and PlanTables never pushes
  // it as an LLM filter. The residual-WHERE pass used to re-derive the
  // consumed set with a laxer per-table resolution rule that matched the
  // conjunct against country's *qualified* pushed filter and silently
  // dropped it — executing neither via the LLM nor via the engine. Now
  // the consumed set flows out of PlanTables, the conjunct reaches the
  // engine, and the binding problem surfaces as an error instead.
  GaloisExecutor galois(&perfect_, &W().catalog());
  auto rm = galois.ExecuteSql(
      "SELECT ci.name FROM city ci, country co "
      "WHERE co.population > 1000000 AND population > 1000000");
  EXPECT_FALSE(rm.ok());
  EXPECT_NE(rm.status().ToString().find("population"), std::string::npos)
      << rm.status().ToString();
}

TEST_F(GaloisExecutorTest, QualifiedTwinConjunctsOnSharedColumnNameWork) {
  // Control for the regression above: qualifying both refs resolves the
  // ambiguity, both predicates execute via the LLM, and the perfect
  // model matches the ground truth.
  GaloisExecutor galois(&perfect_, &W().catalog());
  const char* sql =
      "SELECT ci.name FROM city ci, country co "
      "WHERE ci.country = co.name AND co.population > 50000000 "
      "AND ci.population > 1000000";
  auto rm = galois.ExecuteSql(sql);
  ASSERT_TRUE(rm.ok()) << rm.status().ToString();
  auto rd = engine::ExecuteSql(sql, W().catalog());
  ASSERT_TRUE(rd.ok());
  EXPECT_TRUE(rm->SameContents(*rd));
}

// Property over all 46 queries: Galois executes them with the expected
// schema and the perfect model reproduces the ground truth exactly.
class GaloisWorkloadTest : public ::testing::TestWithParam<int> {};

TEST_P(GaloisWorkloadTest, PerfectModelReproducesGroundTruth) {
  llm::SimulatedLlm model(&W().kb(), PerfectProfile(), &W().catalog(), 7);
  GaloisExecutor galois(&model, &W().catalog());
  const knowledge::QuerySpec* spec = W().GetQuery(GetParam()).value();
  auto rm = galois.ExecuteSql(spec->sql);
  ASSERT_TRUE(rm.ok()) << spec->sql << " -> " << rm.status();
  auto rd = engine::ExecuteSql(spec->sql, W().catalog());
  ASSERT_TRUE(rd.ok());
  EXPECT_TRUE(rm->SameContents(*rd)) << spec->sql;
}

INSTANTIATE_TEST_SUITE_P(All46, GaloisWorkloadTest,
                         ::testing::Range(1, 47));

}  // namespace
}  // namespace galois::core
