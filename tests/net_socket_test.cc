// Unit suite for the shared socket layer (src/net/): partial IO, EINTR
// storms via the injectable syscall shim, deadline expiry mid-read,
// Content-Length validation, frame codec rejections and SIGPIPE
// hardening. Everything runs over socketpairs or loopback sockets —
// hermetic, no network.

#include <cerrno>
#include <csignal>
#include <cstring>
#include <string>
#include <thread>

#include <sys/socket.h>
#include <unistd.h>

#include <random>

#include "gtest/gtest.h"
#include "net/frame.h"
#include "net/http.h"
#include "net/protocol.h"
#include "net/socket.h"

namespace galois::net {
namespace {

/// A connected AF_UNIX stream pair; [0] and [1] are both blocking.
struct SocketPair {
  SocketPair() {
    int fds[2] = {-1, -1};
    EXPECT_EQ(0, ::socketpair(AF_UNIX, SOCK_STREAM, 0, fds));
    a.reset(fds[0]);
    b.reset(fds[1]);
  }
  Fd a, b;
};

int64_t Soon() { return NowMs() + 2000; }

// ---------------------------------------------------------------------------
// Content-Length validation (the strtoll bugfix).

TEST(ParseContentLengthTest, AcceptsPlainDigits) {
  auto r = ParseContentLength("1234");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(1234, r.value());
}

TEST(ParseContentLengthTest, AcceptsSurroundingWhitespace) {
  auto r = ParseContentLength("  42  ");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(42, r.value());
}

TEST(ParseContentLengthTest, AcceptsZero) {
  auto r = ParseContentLength("0");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(0, r.value());
}

TEST(ParseContentLengthTest, RejectsEmpty) {
  EXPECT_EQ(StatusCode::kParseError, ParseContentLength("").status().code());
  EXPECT_EQ(StatusCode::kParseError,
            ParseContentLength("   ").status().code());
}

TEST(ParseContentLengthTest, RejectsTrailingJunk) {
  // std::strtoll would have parsed these as 12 / 0 and carried on.
  EXPECT_EQ(StatusCode::kParseError,
            ParseContentLength("12abc").status().code());
  EXPECT_EQ(StatusCode::kParseError,
            ParseContentLength("abc").status().code());
  EXPECT_EQ(StatusCode::kParseError,
            ParseContentLength("1 2").status().code());
}

TEST(ParseContentLengthTest, RejectsSignsAndNegatives) {
  EXPECT_EQ(StatusCode::kParseError, ParseContentLength("-5").status().code());
  EXPECT_EQ(StatusCode::kParseError, ParseContentLength("+5").status().code());
}

TEST(ParseContentLengthTest, RejectsOverCapAndOverflow) {
  EXPECT_EQ(StatusCode::kParseError,
            ParseContentLength(std::to_string(kMaxHttpBody + 1)).status().code());
  // A value that would overflow int64 must be caught by the running cap
  // check, not wrap around into something plausible.
  EXPECT_EQ(StatusCode::kParseError,
            ParseContentLength("99999999999999999999999999").status().code());
  // At the cap exactly: fine.
  auto r = ParseContentLength(std::to_string(kMaxHttpBody));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(kMaxHttpBody, r.value());
}

// ---------------------------------------------------------------------------
// Frame header codec (pure functions).

TEST(FrameCodecTest, HeaderRoundTrip) {
  std::string header = EncodeFrameHeader(FrameType::kQuery, 1234);
  ASSERT_EQ(kFrameHeaderSize, header.size());
  int64_t payload_size = 0;
  auto decoded = DecodeFrameHeader(header, &payload_size);
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(FrameType::kQuery, decoded.value().type);
  EXPECT_EQ(1234, payload_size);
}

TEST(FrameCodecTest, RejectsBadMagic) {
  std::string header = EncodeFrameHeader(FrameType::kPing, 0);
  header[0] = 'X';
  int64_t n = 0;
  EXPECT_EQ(StatusCode::kParseError,
            DecodeFrameHeader(header, &n).status().code());
}

TEST(FrameCodecTest, RejectsBadVersion) {
  std::string header = EncodeFrameHeader(FrameType::kPing, 0);
  header[4] = static_cast<char>(kFrameVersion + 1);
  int64_t n = 0;
  EXPECT_EQ(StatusCode::kParseError,
            DecodeFrameHeader(header, &n).status().code());
}

TEST(FrameCodecTest, RejectsUnknownType) {
  std::string header = EncodeFrameHeader(FrameType::kPing, 0);
  header[5] = 99;
  int64_t n = 0;
  EXPECT_EQ(StatusCode::kParseError,
            DecodeFrameHeader(header, &n).status().code());
}

TEST(FrameCodecTest, RejectsReservedBits) {
  std::string header = EncodeFrameHeader(FrameType::kPing, 0);
  header[6] = 1;
  int64_t n = 0;
  EXPECT_EQ(StatusCode::kParseError,
            DecodeFrameHeader(header, &n).status().code());
}

TEST(FrameCodecTest, RejectsOversizedLength) {
  // A hostile length field must be rejected before any allocation.
  std::string header = EncodeFrameHeader(FrameType::kPing, 0);
  header[8] = '\xff';
  header[9] = '\xff';
  header[10] = '\xff';
  header[11] = '\x7f';
  int64_t n = 0;
  EXPECT_EQ(StatusCode::kParseError,
            DecodeFrameHeader(header, &n).status().code());
}

// ---------------------------------------------------------------------------
// Frame IO over a socketpair.

TEST(FrameIoTest, RoundTrip) {
  SocketPair pair;
  std::string payload = "{\"sql\":\"SELECT 1\"}";
  ASSERT_TRUE(
      WriteFrame(pair.a.get(), FrameType::kQuery, payload, Soon()).ok());
  auto frame = ReadFrame(pair.b.get(), Soon());
  ASSERT_TRUE(frame.ok()) << frame.status();
  EXPECT_EQ(FrameType::kQuery, frame.value().type);
  EXPECT_EQ(payload, frame.value().payload);
}

TEST(FrameIoTest, EmptyPayloadRoundTrip) {
  SocketPair pair;
  ASSERT_TRUE(WriteFrame(pair.a.get(), FrameType::kPing, "", Soon()).ok());
  auto frame = ReadFrame(pair.b.get(), Soon());
  ASSERT_TRUE(frame.ok()) << frame.status();
  EXPECT_EQ(FrameType::kPing, frame.value().type);
  EXPECT_TRUE(frame.value().payload.empty());
}

TEST(FrameIoTest, OrderlyEofBetweenFramesIsNotFound) {
  SocketPair pair;
  pair.a.reset();  // peer hangs up without sending anything
  auto frame = ReadFrame(pair.b.get(), Soon());
  ASSERT_FALSE(frame.ok());
  EXPECT_EQ(StatusCode::kNotFound, frame.status().code());
}

TEST(FrameIoTest, EofMidHeaderIsIoError) {
  SocketPair pair;
  std::string header = EncodeFrameHeader(FrameType::kQuery, 100);
  ASSERT_TRUE(SendAll(pair.a.get(), header.substr(0, 5), Soon()).ok());
  pair.a.reset();  // die 5 bytes into the 12-byte header
  auto frame = ReadFrame(pair.b.get(), Soon());
  ASSERT_FALSE(frame.ok());
  EXPECT_EQ(StatusCode::kIoError, frame.status().code());
}

TEST(FrameIoTest, EofMidPayloadIsIoErrorNamingShortfall) {
  SocketPair pair;
  std::string header = EncodeFrameHeader(FrameType::kQuery, 100);
  ASSERT_TRUE(SendAll(pair.a.get(), header + "only 20 bytes arrive", Soon())
                  .ok());
  pair.a.reset();
  auto frame = ReadFrame(pair.b.get(), Soon());
  ASSERT_FALSE(frame.ok());
  EXPECT_EQ(StatusCode::kIoError, frame.status().code());
  EXPECT_NE(std::string::npos, frame.status().message().find("of 100"))
      << frame.status();
}

TEST(FrameIoTest, GarbageHeaderIsParseError) {
  SocketPair pair;
  ASSERT_TRUE(SendAll(pair.a.get(), "GETP/not-a-frame", Soon()).ok());
  auto frame = ReadFrame(pair.b.get(), Soon());
  ASSERT_FALSE(frame.ok());
  EXPECT_EQ(StatusCode::kParseError, frame.status().code());
}

// ---------------------------------------------------------------------------
// Partial IO, EINTR storms, deadlines — via the syscall shim.

TEST(SyscallShimTest, SendAllRidesOutOneByteSends) {
  SocketPair pair;
  SyscallShim shim = SyscallShim::Default();
  int sends = 0;
  shim.send_fn = [&sends](int fd, const void* buf, size_t len) {
    ++sends;
    return ::send(fd, buf, len > 0 ? 1 : 0, MSG_NOSIGNAL);
  };
  const std::string data(257, 'x');
  // Drain concurrently: one-byte sends burn a whole skb of kernel buffer
  // accounting each, so an undrained socketpair back-pressures after a
  // few dozen bytes.
  std::string got;
  std::thread reader([&] {
    ASSERT_TRUE(RecvExactly(pair.b.get(), data.size(), &got, Soon()).ok());
  });
  ASSERT_TRUE(SendAll(pair.a.get(), data, Soon(), &shim).ok());
  reader.join();
  EXPECT_EQ(257, sends);
  EXPECT_EQ(data, got);
}

TEST(SyscallShimTest, RecvExactlyRidesOutEintrStorm) {
  SocketPair pair;
  const std::string data = "stormy weather";
  ASSERT_TRUE(SendAll(pair.a.get(), data, Soon()).ok());

  SyscallShim shim = SyscallShim::Default();
  int eintr_left = 25;
  shim.recv_fn = [&eintr_left](int fd, void* buf, size_t len) -> ssize_t {
    if (eintr_left > 0) {
      --eintr_left;
      errno = EINTR;
      return -1;
    }
    return ::recv(fd, buf, len, 0);
  };
  std::string got;
  ASSERT_TRUE(RecvExactly(pair.b.get(), data.size(), &got, Soon(), &shim).ok());
  EXPECT_EQ(data, got);
  EXPECT_EQ(0, eintr_left);
}

TEST(SyscallShimTest, PollEintrStormDoesNotTerminateWait) {
  SocketPair pair;
  SyscallShim shim = SyscallShim::Default();
  int eintr_left = 10;
  shim.poll_fn = [&eintr_left](struct pollfd* fds, nfds_t nfds,
                               int timeout_ms) -> int {
    if (eintr_left > 0) {
      --eintr_left;
      errno = EINTR;
      return -1;
    }
    return ::poll(fds, nfds, timeout_ms);
  };
  ASSERT_TRUE(SendAll(pair.a.get(), "ready", Soon()).ok());
  EXPECT_TRUE(WaitReady(pair.b.get(), POLLIN, Soon(), &shim));
  EXPECT_EQ(0, eintr_left);
}

TEST(SyscallShimTest, DeadlineExpiryMidReadIsIoError) {
  SocketPair pair;
  // Half a frame arrives; the rest never does. The read must give up at
  // the deadline with a timeout, not hang.
  std::string header = EncodeFrameHeader(FrameType::kQuery, 64);
  ASSERT_TRUE(SendAll(pair.a.get(), header, Soon()).ok());
  const int64_t t0 = NowMs();
  auto frame = ReadFrame(pair.b.get(), NowMs() + 150);
  const int64_t elapsed = NowMs() - t0;
  ASSERT_FALSE(frame.ok());
  EXPECT_EQ(StatusCode::kIoError, frame.status().code());
  EXPECT_GE(elapsed, 100);
  EXPECT_LT(elapsed, 2000);
}

TEST(SyscallShimTest, RecvSomeReportsOrderlyEofAsZero) {
  SocketPair pair;
  pair.a.reset();
  char buf[16];
  auto n = RecvSome(pair.b.get(), buf, sizeof(buf), Soon());
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(0u, n.value());
}

// ---------------------------------------------------------------------------
// SIGPIPE hardening: writing into a closed peer must surface as a status,
// never as a fatal signal.

TEST(SigpipeTest, SendToClosedPeerFailsGracefully) {
  IgnoreSigpipe();
  SocketPair pair;
  pair.b.reset();  // peer is gone
  // The first send may succeed into the buffer; keep writing until the
  // kernel notices the peer died. With SIG_DFL this would kill the
  // process; the suite surviving IS the assertion.
  Status status = Status::OK();
  for (int i = 0; i < 16 && status.ok(); ++i) {
    status = SendAll(pair.a.get(), std::string(4096, 'x'), Soon());
  }
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(StatusCode::kIoError, status.code());
}

TEST(SigpipeTest, RespectsApplicationHandler) {
  // IgnoreSigpipe must not clobber a non-default disposition. The
  // installer ran already (previous test / listener code), so this just
  // documents the observable end state: SIGPIPE is not SIG_DFL.
  struct sigaction current;
  std::memset(&current, 0, sizeof(current));
  ASSERT_EQ(0, ::sigaction(SIGPIPE, nullptr, &current));
  EXPECT_NE(SIG_DFL, current.sa_handler);
}

// ---------------------------------------------------------------------------
// HTTP message layer over socketpairs.

TEST(HttpMessageTest, PostRequestRoundTrip) {
  SocketPair pair;
  const std::string wire =
      BuildHttpPost("example:80", "/v1/chat/completions", "{\"a\":1}");
  ASSERT_TRUE(SendAll(pair.a.get(), wire, Soon()).ok());
  auto request = ReadHttpRequest(pair.b.get(), Soon());
  ASSERT_TRUE(request.ok()) << request.status();
  EXPECT_EQ("POST", request.value().method);
  EXPECT_EQ("/v1/chat/completions", request.value().path);
  EXPECT_EQ("{\"a\":1}", request.value().body);
}

TEST(HttpMessageTest, ResponseRoundTrip) {
  SocketPair pair;
  ASSERT_TRUE(
      SendAll(pair.a.get(), BuildHttpResponse(200, "OK", "{\"ok\":true}"),
              Soon())
          .ok());
  auto response = ReadHttpResponse(pair.b.get(), Soon());
  ASSERT_TRUE(response.ok()) << response.status();
  EXPECT_EQ(200, response.value().status_code);
  EXPECT_EQ("{\"ok\":true}", response.value().body);
}

TEST(HttpMessageTest, ResponseWithoutContentLengthReadsToEof) {
  SocketPair pair;
  ASSERT_TRUE(SendAll(pair.a.get(),
                      "HTTP/1.1 200 OK\r\nConnection: close\r\n\r\nhello",
                      Soon())
                  .ok());
  pair.a.reset();
  auto response = ReadHttpResponse(pair.b.get(), Soon());
  ASSERT_TRUE(response.ok()) << response.status();
  EXPECT_EQ("hello", response.value().body);
}

TEST(HttpMessageTest, TruncatedBodyIsIoErrorNotParseError) {
  // The headline regression: a peer that advertises N bytes and dies
  // early is a *transport* fault (retryable upstream) — the short body
  // must never reach a JSON parser as a decode error.
  SocketPair pair;
  ASSERT_TRUE(SendAll(pair.a.get(),
                      BuildHttpResponse(200, "OK", "{\"choices\":[", "",
                                        /*advertised_length=*/4096),
                      Soon())
                  .ok());
  pair.a.reset();
  auto response = ReadHttpResponse(pair.b.get(), Soon());
  ASSERT_FALSE(response.ok());
  EXPECT_EQ(StatusCode::kIoError, response.status().code());
  EXPECT_NE(std::string::npos,
            response.status().message().find("truncated"))
      << response.status();
}

TEST(HttpMessageTest, GarbageContentLengthIsParseError) {
  SocketPair pair;
  ASSERT_TRUE(SendAll(pair.a.get(),
                      "HTTP/1.1 200 OK\r\nContent-Length: 12abc\r\n\r\nbody",
                      Soon())
                  .ok());
  auto response = ReadHttpResponse(pair.b.get(), Soon());
  ASSERT_FALSE(response.ok());
  EXPECT_EQ(StatusCode::kParseError, response.status().code());
}

TEST(HttpMessageTest, ClosedBeforeHeadersIsIoError) {
  SocketPair pair;
  ASSERT_TRUE(SendAll(pair.a.get(), "HTTP/1.1 200 OK\r\nConten", Soon()).ok());
  pair.a.reset();
  auto response = ReadHttpResponse(pair.b.get(), Soon());
  ASSERT_FALSE(response.ok());
  EXPECT_EQ(StatusCode::kIoError, response.status().code());
}

// ---------------------------------------------------------------------------
// Listener + ConnectTcp over real loopback sockets.

TEST(ListenerTest, AcceptTimesOutWithInvalidFd) {
  Listener listener;
  ASSERT_TRUE(listener.Bind("127.0.0.1", 0, 4).ok());
  auto accepted = listener.Accept(50);
  ASSERT_TRUE(accepted.ok()) << accepted.status();
  EXPECT_FALSE(accepted.value().valid());
}

TEST(ListenerTest, ConnectAndExchange) {
  Listener listener;
  ASSERT_TRUE(listener.Bind("127.0.0.1", 0, 4).ok());
  auto client = ConnectTcp("127.0.0.1", listener.port(), 2000);
  ASSERT_TRUE(client.ok()) << client.status();
  auto server_side = listener.Accept(2000);
  ASSERT_TRUE(server_side.ok());
  ASSERT_TRUE(server_side.value().valid());

  ASSERT_TRUE(SendAll(client.value().get(), "over loopback", Soon()).ok());
  std::string got;
  ASSERT_TRUE(
      RecvExactly(server_side.value().get(), 13, &got, Soon()).ok());
  EXPECT_EQ("over loopback", got);
}

// ---------------------------------------------------------------------------
// Partial-query codec (the cluster scatter frames).

PartialQueryRequest SamplePartialRequest() {
  PartialQueryRequest request;
  request.sql = "SELECT c.name FROM LLM.country c WHERE c.GDP > 1000";
  request.table = "country";
  request.alias = "c";
  request.columns = {"name", "GDP"};
  // Descriptor bytes are binary (PredicateDescriptor::Encode output);
  // exercise the hex layer with every awkward byte class.
  request.descriptor = std::string("\x00\x01\x7f\x80\xff\"\\\n", 8);
  request.slice_index = 1;
  request.slice_count = 3;
  request.deadline_ms = 2500;
  return request;
}

TEST(PartialQueryCodecTest, RequestRoundTrip) {
  PartialQueryRequest request = SamplePartialRequest();
  auto parsed = Json::Parse(PartialQueryRequestToJson(request).Dump());
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  auto decoded = PartialQueryRequestFromJson(parsed.value());
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(request.sql, decoded.value().sql);
  EXPECT_EQ(request.table, decoded.value().table);
  EXPECT_EQ(request.alias, decoded.value().alias);
  EXPECT_EQ(request.columns, decoded.value().columns);
  EXPECT_EQ(request.descriptor, decoded.value().descriptor);
  EXPECT_EQ(request.slice_index, decoded.value().slice_index);
  EXPECT_EQ(request.slice_count, decoded.value().slice_count);
  EXPECT_EQ(request.deadline_ms, decoded.value().deadline_ms);
}

TEST(PartialQueryCodecTest, RequestRejectsSliceOutOfRange) {
  for (auto [index, count] : {std::pair<int64_t, int64_t>{3, 3},
                              {0, 0},
                              {-1, 2},
                              {5, 2}}) {
    PartialQueryRequest request = SamplePartialRequest();
    Json j = PartialQueryRequestToJson(request);
    j.Set("slice_index", Json::Number(index));
    j.Set("slice_count", Json::Number(count));
    EXPECT_EQ(StatusCode::kParseError,
              PartialQueryRequestFromJson(j).status().code())
        << index << "/" << count;
  }
}

TEST(PartialQueryCodecTest, RequestRejectsBadDescriptorHex) {
  PartialQueryRequest request = SamplePartialRequest();
  Json j = PartialQueryRequestToJson(request);
  j.Set("descriptor", Json::String("abc"));  // odd length
  EXPECT_EQ(StatusCode::kParseError,
            PartialQueryRequestFromJson(j).status().code());
  j.Set("descriptor", Json::String("zz"));  // not hex
  EXPECT_EQ(StatusCode::kParseError,
            PartialQueryRequestFromJson(j).status().code());
}

TEST(PartialQueryCodecTest, ResponseRoundTrip) {
  PartialQueryResponse response;
  response.table = "country";
  response.alias = "c";
  response.slice_index = 0;
  response.slice_count = 2;
  Schema schema({Column("key", DataType::kString, "c"),
                 Column("GDP", DataType::kInt64, "c")});
  Relation rel(schema);
  rel.AddRowUnchecked({Value::String("France"), Value::Int(2780)});
  rel.AddRowUnchecked({Value::String("Japan"), Value::Int(4231)});
  response.relation = rel;
  response.cost.num_prompts = 7;
  response.cost.prompt_tokens = 120;
  response.cost.completion_tokens = 60;
  response.cost.simulated_latency_ms = 41.25;
  response.cost.by_model["gpt"].num_prompts = 7;
  response.cost.by_model["gpt"].prompt_tokens = 120;
  response.table_cache_lookups = 1;
  response.table_cache_hits = 1;
  response.table_cache_exact_hits = 1;
  response.scan_pages_prefetched = 2;
  response.scan_pages_overfetched = 1;
  auto parsed = Json::Parse(PartialQueryResponseToJson(response).Dump());
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  auto decoded = PartialQueryResponseFromJson(parsed.value());
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(response.table, decoded.value().table);
  EXPECT_EQ(response.alias, decoded.value().alias);
  EXPECT_EQ(response.slice_count, decoded.value().slice_count);
  EXPECT_TRUE(response.relation.SameContents(decoded.value().relation));
  EXPECT_EQ(response.relation.ToCsv(), decoded.value().relation.ToCsv());
  EXPECT_EQ(response.cost.num_prompts, decoded.value().cost.num_prompts);
  EXPECT_EQ(response.cost.prompt_tokens, decoded.value().cost.prompt_tokens);
  EXPECT_EQ(response.cost.completion_tokens,
            decoded.value().cost.completion_tokens);
  EXPECT_DOUBLE_EQ(response.cost.simulated_latency_ms,
                   decoded.value().cost.simulated_latency_ms);
  ASSERT_EQ(1u, decoded.value().cost.by_model.size());
  EXPECT_TRUE(response.cost.by_model.at("gpt") ==
              decoded.value().cost.by_model.at("gpt"));
  EXPECT_EQ(response.table_cache_lookups, decoded.value().table_cache_lookups);
  EXPECT_EQ(response.table_cache_exact_hits,
            decoded.value().table_cache_exact_hits);
  EXPECT_EQ(response.scan_pages_prefetched,
            decoded.value().scan_pages_prefetched);
  EXPECT_EQ(response.scan_pages_overfetched,
            decoded.value().scan_pages_overfetched);
}

TEST(PartialQueryCodecTest, TruncatedPartialFrameIsIoError) {
  SocketPair pair;
  std::string payload =
      PartialQueryRequestToJson(SamplePartialRequest()).Dump();
  std::string header =
      EncodeFrameHeader(FrameType::kPartialQuery,
                        static_cast<int64_t>(payload.size()));
  // Only half the payload arrives, then the peer dies.
  ASSERT_TRUE(
      SendAll(pair.a.get(), header + payload.substr(0, payload.size() / 2),
              Soon())
          .ok());
  pair.a.reset();
  auto frame = ReadFrame(pair.b.get(), Soon());
  ASSERT_FALSE(frame.ok());
  EXPECT_EQ(StatusCode::kIoError, frame.status().code());
}

TEST(PartialQueryCodecTest, OversizePartialFrameIsRejected) {
  // A hostile kPartialQuery length field is rejected at the header, before
  // any payload allocation.
  std::string header = EncodeFrameHeader(FrameType::kPartialQuery, 0);
  header[8] = '\x01';
  header[9] = '\x00';
  header[10] = '\x00';
  header[11] = '\x04';  // 0x04000001 = 64MiB + 1
  int64_t n = 0;
  EXPECT_EQ(StatusCode::kParseError,
            DecodeFrameHeader(header, &n).status().code());
}

TEST(PartialQueryCodecTest, FuzzedPayloadsNeverCrashTheCodec) {
  // Deterministic mutation fuzz: flip/truncate/extend valid payloads and
  // feed the result through parse + decode. The codec must return an
  // error or a value — never crash — whatever arrives.
  std::mt19937 rng(0xC0FFEE);
  const std::string req_seed =
      PartialQueryRequestToJson(SamplePartialRequest()).Dump();
  PartialQueryResponse seed_response;
  seed_response.table = "t";
  seed_response.alias = "a";
  const std::string resp_seed =
      PartialQueryResponseToJson(seed_response).Dump();
  for (int round = 0; round < 400; ++round) {
    std::string payload = (round % 2 == 0) ? req_seed : resp_seed;
    std::uniform_int_distribution<size_t> pos(0, payload.size() - 1);
    switch (rng() % 3) {
      case 0:  // byte flip(s)
        for (int k = 0; k <= static_cast<int>(rng() % 4); ++k) {
          payload[pos(rng)] = static_cast<char>(rng() % 256);
        }
        break;
      case 1:  // truncate
        payload.resize(pos(rng));
        break;
      default:  // splice garbage into the middle
        payload.insert(pos(rng), std::string(1 + rng() % 16,
                                             static_cast<char>(rng() % 256)));
        break;
    }
    auto parsed = Json::Parse(payload);
    if (!parsed.ok()) continue;  // parse rejection is a fine outcome
    if (round % 2 == 0) {
      PartialQueryRequestFromJson(parsed.value()).status();
    } else {
      PartialQueryResponseFromJson(parsed.value()).status();
    }
  }
}

TEST(ListenerTest, ConnectToDeadPortFails) {
  // Bind + close to get a port that is (very likely) not listening.
  Listener listener;
  ASSERT_TRUE(listener.Bind("127.0.0.1", 0, 4).ok());
  int dead_port = listener.port();
  listener.Close();
  auto client = ConnectTcp("127.0.0.1", dead_port, 500);
  ASSERT_FALSE(client.ok());
  EXPECT_EQ(StatusCode::kIoError, client.status().code());
}

}  // namespace
}  // namespace galois::net
