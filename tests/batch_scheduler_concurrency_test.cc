// Tests for concurrent batch dispatch: the common::ThreadPool, the
// BatchScheduler's parallel_batches path (Add-order preservation,
// sequential/parallel equivalence, the drop-on-error queue contract and
// phase/chunk error attribution), thread-safe CostMeter accounting in
// SimulatedLlm, and a PromptCache::CompleteBatch hammer intended to run
// under ThreadSanitizer.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/thread_pool.h"
#include "core/galois_executor.h"
#include "knowledge/workload.h"
#include "llm/batch_scheduler.h"
#include "llm/prompt_cache.h"
#include "llm/simulated_llm.h"

namespace galois::llm {
namespace {

Prompt MakePrompt(const std::string& text) {
  Prompt p;
  p.text = text;
  p.intent = FreeformIntent{};
  return p;
}

std::vector<Prompt> MakePrompts(const std::vector<std::string>& texts) {
  std::vector<Prompt> out;
  out.reserve(texts.size());
  for (const std::string& t : texts) out.push_back(MakePrompt(t));
  return out;
}

/// Thread-safe echo model whose CompleteBatch sleeps a per-chunk duration
/// derived from the first prompt, so concurrent chunks finish out of
/// dispatch order and order-preservation is actually exercised.
class ConcurrentEchoModel : public LanguageModel {
 public:
  explicit ConcurrentEchoModel(double sleep_scale_ms = 0.0)
      : sleep_scale_ms_(sleep_scale_ms) {}

  const std::string& name() const override { return name_; }

  Result<Completion> Complete(const Prompt& prompt) override {
    std::lock_guard<std::mutex> lock(mu_);
    ++cost_.num_prompts;
    return Completion{"echo:" + prompt.text};
  }

  Result<std::vector<Completion>> CompleteBatch(
      const std::vector<Prompt>& prompts) override {
    int in_flight = in_flight_.fetch_add(1) + 1;
    {
      std::lock_guard<std::mutex> lock(mu_);
      int prev = max_in_flight_;
      max_in_flight_ = in_flight > prev ? in_flight : prev;
    }
    if (sleep_scale_ms_ > 0.0 && !prompts.empty()) {
      // Later chunks sleep less: chunk completion order inverts dispatch
      // order.
      double ms =
          sleep_scale_ms_ *
          static_cast<double>(10 - (prompts[0].text.back() - '0') % 10);
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::milli>(ms));
    }
    std::vector<Completion> out;
    out.reserve(prompts.size());
    for (const Prompt& p : prompts) out.push_back({"echo:" + p.text});
    {
      std::lock_guard<std::mutex> lock(mu_);
      cost_.num_prompts += static_cast<int64_t>(prompts.size());
      ++cost_.num_batches;
      batch_sizes_.push_back(prompts.size());
    }
    in_flight_.fetch_sub(1);
    return out;
  }

  CostMeter cost() const override {
    std::lock_guard<std::mutex> lock(mu_);
    return cost_;
  }
  void ResetCost() override {
    std::lock_guard<std::mutex> lock(mu_);
    cost_.Reset();
  }

  int max_in_flight() const {
    std::lock_guard<std::mutex> lock(mu_);
    return max_in_flight_;
  }
  std::vector<size_t> batch_sizes() const {
    std::lock_guard<std::mutex> lock(mu_);
    return batch_sizes_;
  }

 private:
  std::string name_ = "concurrent-echo";
  double sleep_scale_ms_;
  std::atomic<int> in_flight_{0};
  mutable std::mutex mu_;
  CostMeter cost_;
  int max_in_flight_ = 0;
  std::vector<size_t> batch_sizes_;
};

/// Fails any chunk containing the prompt text "boom".
class BoomModel : public ConcurrentEchoModel {
 public:
  Result<std::vector<Completion>> CompleteBatch(
      const std::vector<Prompt>& prompts) override {
    for (const Prompt& p : prompts) {
      if (p.text == "boom") return Status::LlmError("backend exploded");
    }
    return ConcurrentEchoModel::CompleteBatch(prompts);
  }
};

// --- ThreadPool ------------------------------------------------------------

TEST(ThreadPoolTest, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_threads(), 4u);
  std::atomic<int> ran{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 64; ++i) {
    futures.push_back(pool.Submit([&ran] { ran.fetch_add(1); }));
  }
  for (auto& f : futures) f.wait();
  EXPECT_EQ(ran.load(), 64);
}

TEST(ThreadPoolTest, TasksOverlapInTime) {
  ThreadPool pool(4);
  // Four tasks that each wait until all four have started can only finish
  // if they run concurrently.
  std::atomic<int> started{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 4; ++i) {
    futures.push_back(pool.Submit([&started] {
      started.fetch_add(1);
      while (started.load() < 4) std::this_thread::yield();
    }));
  }
  for (auto& f : futures) f.wait();
  EXPECT_EQ(started.load(), 4);
}

TEST(ThreadPoolTest, ZeroThreadsClampedToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1u);
  auto f = pool.Submit([] {});
  f.wait();
}

// --- BatchScheduler: parallel dispatch -------------------------------------

TEST(ConcurrentDispatchTest, PreservesAddOrderWhenChunksFinishOutOfOrder) {
  ConcurrentEchoModel model(/*sleep_scale_ms=*/2.0);
  BatchPolicy policy;
  policy.batch = true;
  policy.max_batch_size = 2;
  policy.parallel_batches = 8;
  BatchScheduler scheduler(&model, policy, "test-phase");
  std::vector<std::string> texts;
  for (int i = 0; i < 16; ++i) texts.push_back("p" + std::to_string(i));
  auto out = scheduler.Run(MakePrompts(texts));
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->size(), 16u);
  for (size_t i = 0; i < 16; ++i) {
    EXPECT_EQ((*out)[i].text, "echo:p" + std::to_string(i)) << i;
  }
  EXPECT_EQ(model.cost().num_batches, 8);
  // At least two round trips genuinely overlapped.
  EXPECT_GE(model.max_in_flight(), 2);
}

TEST(ConcurrentDispatchTest, InFlightNeverExceedsParallelBatches) {
  ConcurrentEchoModel model(/*sleep_scale_ms=*/1.0);
  BatchPolicy policy;
  policy.batch = true;
  policy.max_batch_size = 1;
  policy.parallel_batches = 3;
  BatchScheduler scheduler(&model, policy);
  std::vector<std::string> texts;
  for (int i = 0; i < 24; ++i) texts.push_back("q" + std::to_string(i));
  ASSERT_TRUE(scheduler.Run(MakePrompts(texts)).ok());
  EXPECT_LE(model.max_in_flight(), 3);
}

TEST(ConcurrentDispatchTest, DedupesAcrossConcurrentChunks) {
  ConcurrentEchoModel model;
  BatchPolicy policy;
  policy.batch = true;
  policy.max_batch_size = 2;
  policy.parallel_batches = 4;
  BatchScheduler scheduler(&model, policy);
  auto out = scheduler.Run(
      MakePrompts({"a", "b", "a", "c", "b", "d", "a", "e", "f"}));
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->size(), 9u);
  EXPECT_EQ((*out)[0].text, "echo:a");
  EXPECT_EQ((*out)[2].text, "echo:a");
  EXPECT_EQ((*out)[6].text, "echo:a");
  EXPECT_EQ((*out)[4].text, "echo:b");
  // Six distinct prompts -> 3 chunks of 2, never the duplicates.
  EXPECT_EQ(model.cost().num_prompts, 6);
  EXPECT_EQ(model.cost().num_batches, 3);
}

TEST(ConcurrentDispatchTest, WallClockBeatsSequentialDispatch) {
  // 8 chunks x 20 ms of backend latency: sequential dispatch is bounded
  // below by 160 ms of sleeping; 4-way dispatch needs only 2 rounds.
  auto run = [](int parallel) {
    ConcurrentEchoModel model(/*sleep_scale_ms=*/2.0);
    BatchPolicy policy;
    policy.batch = true;
    policy.max_batch_size = 1;
    policy.parallel_batches = parallel;
    BatchScheduler scheduler(&model, policy);
    std::vector<Prompt> prompts;
    // All prompts end in the same digit so every chunk sleeps ~20 ms.
    for (int i = 0; i < 8; ++i) {
      prompts.push_back(MakePrompt("w" + std::to_string(i) + "-0"));
    }
    auto start = std::chrono::steady_clock::now();
    auto out = scheduler.Run(std::move(prompts));
    EXPECT_TRUE(out.ok());
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start)
        .count();
  };
  double sequential_ms = run(1);
  double parallel_ms = run(4);
  // Generous margin: the parallel run must recover at least a quarter of
  // the sequential sleep time even on a loaded CI machine.
  EXPECT_LT(parallel_ms, sequential_ms * 0.75)
      << "sequential=" << sequential_ms << "ms parallel=" << parallel_ms
      << "ms";
}

// --- error contract --------------------------------------------------------

TEST(ConcurrentDispatchTest, ErrorNamesPhaseAndChunkAndDropsQueue) {
  for (int parallel : {1, 4}) {
    BoomModel model;
    BatchPolicy policy;
    policy.batch = true;
    policy.max_batch_size = 2;
    policy.parallel_batches = parallel;
    BatchScheduler scheduler(&model, policy, "filter-check:population");
    // "boom" lands in chunk 3 of 4.
    scheduler.Add(MakePrompt("a"));
    scheduler.Add(MakePrompt("b"));
    scheduler.Add(MakePrompt("c"));
    scheduler.Add(MakePrompt("d"));
    scheduler.Add(MakePrompt("e"));
    scheduler.Add(MakePrompt("boom"));
    scheduler.Add(MakePrompt("g"));
    EXPECT_EQ(scheduler.pending(), 7u);
    auto out = scheduler.Flush();
    ASSERT_FALSE(out.ok());
    EXPECT_EQ(out.status().code(), StatusCode::kLlmError);
    EXPECT_NE(out.status().message().find("filter-check:population"),
              std::string::npos)
        << out.status().message();
    EXPECT_NE(out.status().message().find("chunk 3/4"), std::string::npos)
        << out.status().message();
    EXPECT_NE(out.status().message().find("backend exploded"),
              std::string::npos);
    // Contract: the queue is emptied even on error; nothing is retried
    // implicitly on the next Flush.
    EXPECT_EQ(scheduler.pending(), 0u);
    auto next = scheduler.Flush();
    ASSERT_TRUE(next.ok());
    EXPECT_TRUE(next->empty());
  }
}

TEST(ConcurrentDispatchTest, SequentialModeErrorNamesPhaseAndPrompt) {
  BatchPolicy policy;
  policy.batch = false;
  class BoomOnComplete : public ConcurrentEchoModel {
   public:
    Result<Completion> Complete(const Prompt& prompt) override {
      if (prompt.text == "boom") return Status::LlmError("no answer");
      return ConcurrentEchoModel::Complete(prompt);
    }
  } seq_model;
  BatchScheduler seq(&seq_model, policy, "attribute:capital");
  auto out = seq.Run(MakePrompts({"a", "boom", "c"}));
  ASSERT_FALSE(out.ok());
  EXPECT_NE(out.status().message().find("attribute:capital"),
            std::string::npos);
  EXPECT_NE(out.status().message().find("prompt 2/3"), std::string::npos)
      << out.status().message();
  EXPECT_EQ(seq.pending(), 0u);
}

// --- thread-safe accounting -------------------------------------------------

TEST(ConcurrentDispatchTest, SimulatedLlmMeterIsExactUnderConcurrency) {
  auto workload = knowledge::SpiderLikeWorkload::Create();
  ASSERT_TRUE(workload.ok());
  SimulatedLlm model(&workload->kb(), ModelProfile::ChatGpt(),
                     &workload->catalog(), 7);

  std::vector<Prompt> prompts;
  for (const char* key : {"Italy", "France", "Germany", "Spain", "Japan",
                          "Brazil", "Canada", "Egypt"}) {
    AttributeGetIntent intent;
    intent.concept_name = "country";
    intent.key = key;
    intent.attribute = "population";
    Prompt p;
    p.text = std::string("population of ") + key;
    p.intent = intent;
    prompts.push_back(std::move(p));
  }

  BatchPolicy policy;
  policy.batch = true;
  policy.max_batch_size = 2;
  policy.parallel_batches = 4;
  BatchScheduler parallel_scheduler(&model, policy, "meter");
  auto parallel_out = parallel_scheduler.Run(prompts);
  ASSERT_TRUE(parallel_out.ok());
  CostMeter parallel_cost = model.cost();

  SimulatedLlm sequential_model(&workload->kb(), ModelProfile::ChatGpt(),
                                &workload->catalog(), 7);
  policy.parallel_batches = 1;
  BatchScheduler sequential_scheduler(&sequential_model, policy, "meter");
  auto sequential_out = sequential_scheduler.Run(prompts);
  ASSERT_TRUE(sequential_out.ok());
  CostMeter sequential_cost = sequential_model.cost();

  ASSERT_EQ(parallel_out->size(), sequential_out->size());
  for (size_t i = 0; i < parallel_out->size(); ++i) {
    EXPECT_EQ((*parallel_out)[i].text, (*sequential_out)[i].text) << i;
  }
  EXPECT_EQ(parallel_cost.num_prompts, sequential_cost.num_prompts);
  EXPECT_EQ(parallel_cost.num_batches, sequential_cost.num_batches);
  EXPECT_EQ(parallel_cost.prompt_tokens, sequential_cost.prompt_tokens);
  EXPECT_EQ(parallel_cost.completion_tokens,
            sequential_cost.completion_tokens);
  // Simulated latency is a pure function of the round trips, independent
  // of completion order (summation order may differ by float ulps).
  EXPECT_NEAR(parallel_cost.simulated_latency_ms,
              sequential_cost.simulated_latency_ms, 1e-6);
}

// --- PromptCache hammer (ThreadSanitizer target) ----------------------------

TEST(ConcurrentDispatchTest, PromptCacheSurvivesConcurrentFlushes) {
  // Several independent flushes with overlapping prompt sets hammer
  // PromptCache::CompleteBatch from scheduler worker threads and from
  // plain std::threads at once. Run under -fsanitize=thread in CI.
  ConcurrentEchoModel inner(/*sleep_scale_ms=*/0.5);
  PromptCache cache(&inner);

  auto flush_some = [&cache](int salt) {
    BatchPolicy policy;
    policy.batch = true;
    policy.max_batch_size = 3;
    policy.parallel_batches = 4;
    BatchScheduler scheduler(&cache, policy,
                             "hammer:" + std::to_string(salt));
    std::vector<Prompt> prompts;
    for (int i = 0; i < 30; ++i) {
      // Half the texts are shared across threads, half are unique, so
      // both cache hits and misses happen concurrently.
      std::string text = i % 2 == 0
                             ? "shared-" + std::to_string(i)
                             : "t" + std::to_string(salt) + "-" +
                                   std::to_string(i);
      prompts.push_back(Prompt{text, FreeformIntent{}});
    }
    auto out = scheduler.Run(std::move(prompts));
    ASSERT_TRUE(out.ok());
    ASSERT_EQ(out->size(), 30u);
    for (int i = 0; i < 30; ++i) {
      std::string text = i % 2 == 0
                             ? "shared-" + std::to_string(i)
                             : "t" + std::to_string(salt) + "-" +
                                   std::to_string(i);
      EXPECT_EQ((*out)[static_cast<size_t>(i)].text, "echo:" + text);
    }
  };

  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&flush_some, t] {
      for (int round = 0; round < 3; ++round) flush_some(t);
    });
  }
  for (std::thread& t : threads) t.join();

  // Every distinct prompt is cached exactly once.
  // 15 shared + 4 threads * 15 unique = 75 distinct texts.
  EXPECT_EQ(cache.size(), 75u);
}

}  // namespace
}  // namespace galois::llm

// --- end-to-end: concurrent executor equivalence ----------------------------

namespace galois::core {
namespace {

TEST(ConcurrentExecutorTest, ParallelBatchesReturnsIdenticalRelations) {
  auto workload = knowledge::SpiderLikeWorkload::Create();
  ASSERT_TRUE(workload.ok());
  int checked = 0;
  for (const knowledge::QuerySpec& q : workload->queries()) {
    if (q.id % 5 != 0) continue;  // sample every 5th query
    llm::SimulatedLlm seq_model(&workload->kb(),
                                llm::ModelProfile::ChatGpt(),
                                &workload->catalog(), 7);
    ExecutionOptions opts;
    opts.batch_prompts = true;
    opts.max_batch_size = 3;
    opts.parallel_batches = 1;
    GaloisExecutor sequential(&seq_model, &workload->catalog(), opts);
    auto rm_seq = sequential.RunSql(q.sql);
    ASSERT_TRUE(rm_seq.ok()) << "q" << q.id;

    llm::SimulatedLlm par_model(&workload->kb(),
                                llm::ModelProfile::ChatGpt(),
                                &workload->catalog(), 7);
    opts.parallel_batches = 4;
    GaloisExecutor parallel(&par_model, &workload->catalog(), opts);
    auto rm_par = parallel.RunSql(q.sql);
    ASSERT_TRUE(rm_par.ok()) << "q" << q.id;

    // Byte-identical relations and identical accounting: concurrency
    // moves wall-clock time, never answers or billing.
    EXPECT_TRUE(rm_seq->relation.SameContents(rm_par->relation))
        << "q" << q.id;
    EXPECT_EQ(rm_seq->cost.num_prompts, rm_par->cost.num_prompts)
        << "q" << q.id;
    EXPECT_EQ(rm_seq->cost.num_batches, rm_par->cost.num_batches)
        << "q" << q.id;
    EXPECT_EQ(rm_seq->cost.cache_hits, rm_par->cost.cache_hits)
        << "q" << q.id;
    ++checked;
  }
  EXPECT_GE(checked, 4);
}

TEST(ConcurrentExecutorTest, CachedParallelRunStaysEquivalentAndWarm) {
  auto workload = knowledge::SpiderLikeWorkload::Create();
  ASSERT_TRUE(workload.ok());
  llm::SimulatedLlm inner(&workload->kb(), llm::ModelProfile::ChatGpt(),
                          &workload->catalog(), 7);
  llm::PromptCache cache(&inner);
  ExecutionOptions opts;
  opts.batch_prompts = true;
  opts.max_batch_size = 4;
  opts.parallel_batches = 4;
  opts.verify_cells = true;
  GaloisExecutor galois(&cache, &workload->catalog(), opts);
  const char* sql =
      "SELECT name, capital FROM country WHERE continent = 'Europe'";

  auto cold = galois.RunSql(sql);
  ASSERT_TRUE(cold.ok());
  auto warm = galois.RunSql(sql);
  ASSERT_TRUE(warm.ok());
  EXPECT_TRUE(cold->relation.SameContents(warm->relation));
  // The warm rerun answers every fan-out prompt from cache.
  EXPECT_GT(warm->cost.cache_hits, 0);
}

}  // namespace
}  // namespace galois::core
