// Routing-equivalence suite: a ModelRouter pointing every phase at the
// same backend must be invisible — relations, provenance order and the
// CostMeter byte-identical to handing the executor the model directly
// (the pipeline_equivalence_test pattern, applied to the routing layer).
// Plus the cascade configuration the router exists for: critic
// verification billed to a strong model, everything else to a cheap one,
// cleanly separated in the by_model breakdown.

#include <gtest/gtest.h>

#include <map>
#include <string>

#include "core/galois_executor.h"
#include "eval/harness.h"
#include "eval/report.h"
#include "knowledge/workload.h"
#include "llm/model_router.h"
#include "llm/prompt_templates.h"
#include "llm/simulated_llm.h"

namespace galois::core {
namespace {

using llm::ModelProfile;
using llm::ModelRouter;
using llm::SimulatedLlm;

const knowledge::SpiderLikeWorkload& W() {
  static const auto* w = []() {
    auto r = knowledge::SpiderLikeWorkload::Create();
    EXPECT_TRUE(r.ok());
    return new knowledge::SpiderLikeWorkload(std::move(r).value());
  }();
  return *w;
}

ExecutionOptions FullOptions() {
  ExecutionOptions opts;
  opts.batch_prompts = true;
  opts.max_batch_size = 4;
  opts.parallel_batches = 2;
  opts.verify_cells = true;
  opts.record_provenance = true;
  return opts;
}

void ExpectTraceEq(const ExecutionTrace& a, const ExecutionTrace& b,
                   const std::string& sql) {
  ASSERT_EQ(a.scans.size(), b.scans.size()) << sql;
  for (size_t i = 0; i < a.scans.size(); ++i) {
    EXPECT_EQ(a.scans[i].table_alias, b.scans[i].table_alias) << sql;
    EXPECT_EQ(a.scans[i].pages, b.scans[i].pages) << sql;
    EXPECT_EQ(a.scans[i].keys, b.scans[i].keys) << sql;
  }
  ASSERT_EQ(a.cells.size(), b.cells.size()) << sql;
  for (size_t i = 0; i < a.cells.size(); ++i) {
    EXPECT_EQ(a.cells[i].key, b.cells[i].key) << sql;
    EXPECT_EQ(a.cells[i].column, b.cells[i].column) << sql;
    EXPECT_EQ(a.cells[i].prompt, b.cells[i].prompt) << sql;
    EXPECT_EQ(a.cells[i].completion, b.cells[i].completion) << sql;
    EXPECT_EQ(a.cells[i].verified, b.cells[i].verified) << sql;
    EXPECT_EQ(a.cells[i].rejected, b.cells[i].rejected) << sql;
  }
}

/// Executes `sql` against the model directly and against a router that
/// sends every phase to the same model; everything observable must match
/// byte for byte.
void ExpectRoutingInvisible(const std::string& sql) {
  SimulatedLlm direct_model(&W().kb(), ModelProfile::ChatGpt(),
                            &W().catalog(), 7);
  GaloisExecutor direct(&direct_model, &W().catalog(), FullOptions());
  auto rm_direct = direct.RunSql(sql);
  ASSERT_TRUE(rm_direct.ok()) << sql << ": " << rm_direct.status().ToString();

  SimulatedLlm routed_model(&W().kb(), ModelProfile::ChatGpt(),
                            &W().catalog(), 7);
  ModelRouter router;
  ASSERT_TRUE(router.AddBackend("chatgpt", &routed_model).ok());
  for (const std::string& phase : llm::RoutablePhases()) {
    ASSERT_TRUE(router.SetRoute(phase, "chatgpt").ok());
  }
  GaloisExecutor routed(&router, &W().catalog(), FullOptions());
  auto rm_routed = routed.RunSql(sql);
  ASSERT_TRUE(rm_routed.ok()) << sql << ": " << rm_routed.status().ToString();

  EXPECT_TRUE(rm_direct->relation.SameContents(rm_routed->relation)) << sql;

  const llm::CostMeter& a = rm_direct->cost;
  const llm::CostMeter& b = rm_routed->cost;
  EXPECT_EQ(a.num_prompts, b.num_prompts) << sql;
  EXPECT_EQ(a.num_batches, b.num_batches) << sql;
  EXPECT_EQ(a.prompt_tokens, b.prompt_tokens) << sql;
  EXPECT_EQ(a.completion_tokens, b.completion_tokens) << sql;
  // parallel_batches == 2 reassociates the double accumulation.
  EXPECT_NEAR(a.simulated_latency_ms, b.simulated_latency_ms,
              1e-6 * (1.0 + a.simulated_latency_ms))
      << sql;
  ASSERT_EQ(a.by_model.size(), 1u) << sql;
  ASSERT_EQ(b.by_model.size(), 1u) << sql;
  EXPECT_EQ(a.by_model.begin()->first, b.by_model.begin()->first) << sql;
  EXPECT_EQ(a.by_model.begin()->second.num_prompts,
            b.by_model.begin()->second.num_prompts)
      << sql;

  ExpectTraceEq(rm_direct->trace, rm_routed->trace, sql);
}

TEST(RoutingEquivalenceTest, SelectionWithVerification) {
  ExpectRoutingInvisible(
      "SELECT name, capital, population FROM country "
      "WHERE continent = 'Europe'");
}

TEST(RoutingEquivalenceTest, JoinAcrossTables) {
  ExpectRoutingInvisible(
      "SELECT ci.name, ci.mayor, co.capital "
      "FROM city ci, country co WHERE ci.country = co.name");
}

TEST(RoutingEquivalenceTest, Aggregate) {
  ExpectRoutingInvisible(
      "SELECT continent, COUNT(*) FROM country GROUP BY continent");
}

// --- phase derivation ------------------------------------------------------

TEST(ModelRouterTest, PhaseOfIntentMatchesSchedulerVocabulary) {
  llm::KeyScanIntent scan;
  EXPECT_EQ(llm::PhaseOfIntent(llm::PromptIntent(scan)), "key-scan");
  llm::FilterCheckIntent check;
  EXPECT_EQ(llm::PhaseOfIntent(llm::PromptIntent(check)), "filter-check");
  llm::AttributeGetIntent get;
  EXPECT_EQ(llm::PhaseOfIntent(llm::PromptIntent(get)), "attribute");
  llm::VerifyIntent verify;
  EXPECT_EQ(llm::PhaseOfIntent(llm::PromptIntent(verify)), "verify");
  llm::FreeformIntent freeform;
  EXPECT_EQ(llm::PhaseOfIntent(llm::PromptIntent(freeform)), "freeform");
}

TEST(ModelRouterTest, ValidatesPhasesAndBackends) {
  SimulatedLlm model(&W().kb(), ModelProfile::Flan(), &W().catalog());
  ModelRouter router;
  EXPECT_TRUE(router.AddBackend("flan", &model).ok());
  EXPECT_EQ(router.AddBackend("flan", &model).code(),
            StatusCode::kAlreadyExists);
  EXPECT_EQ(router.SetRoute("no-such-phase", "flan").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(router.SetRoute("verify", "no-such-backend").code(),
            StatusCode::kNotFound);
  // "critic" is an accepted alias for the verify phase.
  EXPECT_TRUE(router.SetRoute("critic", "flan").ok());
  auto routes = router.routes();
  ASSERT_EQ(routes.count("verify"), 1u);
  EXPECT_EQ(routes["verify"], "flan");

  std::map<std::string, std::string> bad{{"verify", "missing"}};
  EXPECT_FALSE(router.ConfigureRoutes(bad).ok());
  // Failed wholesale config must not wipe the previous routes.
  EXPECT_EQ(router.routes().count("verify"), 1u);
}

TEST(ModelRouterTest, MixedBatchPartitionsPerBackendAndKeepsOrder) {
  SimulatedLlm cheap(&W().kb(), ModelProfile::Flan(), &W().catalog());
  SimulatedLlm strong(&W().kb(), ModelProfile::ChatGpt(), &W().catalog());
  ModelRouter router;
  ASSERT_TRUE(router.AddBackend("flan", &cheap).ok());
  ASSERT_TRUE(router.AddBackend("chatgpt", &strong).ok());
  ASSERT_TRUE(router.SetRoute("verify", "chatgpt").ok());

  auto attribute = [](const char* key) {
    llm::AttributeGetIntent intent;
    intent.concept_name = "country";
    intent.key = key;
    intent.attribute = "capital";
    intent.attribute_description = "capital city";
    return llm::BuildAttributePrompt(intent);
  };
  auto verify = [](const char* key) {
    llm::VerifyIntent intent;
    intent.concept_name = "country";
    intent.key = key;
    intent.attribute = "capital";
    intent.attribute_description = "capital city";
    intent.claimed = Value::String("Rome");
    return llm::BuildVerifyPrompt(intent);
  };

  // Interleaved phases: attribute -> flan, verify -> chatgpt.
  std::vector<llm::Prompt> batch{attribute("Italy"), verify("Italy"),
                                 attribute("Japan"), verify("Japan")};
  auto routed = router.CompleteBatch(batch);
  ASSERT_TRUE(routed.ok()) << routed.status();
  ASSERT_EQ(routed.value().size(), 4u);

  // Each position matches what the owning backend answers directly.
  SimulatedLlm cheap_ref(&W().kb(), ModelProfile::Flan(), &W().catalog());
  SimulatedLlm strong_ref(&W().kb(), ModelProfile::ChatGpt(),
                          &W().catalog());
  EXPECT_EQ(routed.value()[0].text,
            cheap_ref.Complete(batch[0]).value().text);
  EXPECT_EQ(routed.value()[1].text,
            strong_ref.Complete(batch[1]).value().text);
  EXPECT_EQ(routed.value()[2].text,
            cheap_ref.Complete(batch[2]).value().text);
  EXPECT_EQ(routed.value()[3].text,
            strong_ref.Complete(batch[3]).value().text);

  // One inner round trip per backend involved; spend split per model.
  llm::CostMeter cost = router.cost();
  EXPECT_EQ(cost.num_batches, 2);
  EXPECT_EQ(cost.num_prompts, 4);
  ASSERT_EQ(cost.by_model.size(), 2u);
  EXPECT_EQ(cost.by_model.at(cheap.name()).num_prompts, 2);
  EXPECT_EQ(cost.by_model.at(strong.name()).num_prompts, 2);
}

// --- the cascade the router exists for -------------------------------------

TEST(RoutingCascadeTest, CriticPhaseBillsToStrongModelOnly) {
  SimulatedLlm cheap(&W().kb(), ModelProfile::Flan(), &W().catalog(), 7);
  SimulatedLlm strong(&W().kb(), ModelProfile::ChatGpt(), &W().catalog(), 7);
  ModelRouter router;
  ASSERT_TRUE(router.AddBackend("flan", &cheap).ok());
  ASSERT_TRUE(router.AddBackend("chatgpt", &strong).ok());
  ASSERT_TRUE(router.SetDefaultBackend("flan").ok());
  ASSERT_TRUE(router.SetRoute("critic", "chatgpt").ok());

  ExecutionOptions opts;
  opts.batch_prompts = true;
  opts.verify_cells = true;
  GaloisExecutor executor(&router, &W().catalog(), opts);
  auto rm = executor.RunSql(
      "SELECT name, capital FROM country WHERE continent = 'Oceania'");
  ASSERT_TRUE(rm.ok()) << rm.status();

  const llm::CostMeter& cost = rm->cost;
  ASSERT_EQ(cost.by_model.size(), 2u) << "expected cheap + strong slices";
  const llm::ModelUsage& cheap_usage = cost.by_model.at(cheap.name());
  const llm::ModelUsage& strong_usage = cost.by_model.at(strong.name());

  // The strong model saw exactly the critic prompts: one per verified
  // cell, i.e. as many as the cheap model's retrieved attribute cells.
  EXPECT_GT(strong_usage.num_prompts, 0);
  EXPECT_GT(cheap_usage.num_prompts, strong_usage.num_prompts);
  EXPECT_EQ(cheap_usage.num_prompts + strong_usage.num_prompts,
            cost.num_prompts);
  EXPECT_EQ(cheap_usage.num_batches + strong_usage.num_batches,
            cost.num_batches);

  // The strong model's own meter agrees: it answered only verify prompts.
  EXPECT_EQ(strong.cost().num_prompts, strong_usage.num_prompts);
}

TEST(RoutingCascadeTest, HarnessBuildsRouterFromPhaseModels) {
  // Routing every phase at the run's own profile reproduces the direct
  // run, outcome for outcome.
  eval::ExperimentConfig direct_config;
  direct_config.options.batch_prompts = true;
  direct_config.options.verify_cells = true;
  auto direct = eval::RunExperiment(W(), ModelProfile::ChatGpt(),
                                    direct_config);
  ASSERT_TRUE(direct.ok()) << direct.status();

  eval::ExperimentConfig routed_config = direct_config;
  for (const std::string& phase : llm::RoutablePhases()) {
    routed_config.options.phase_models[phase] = "chatgpt";
  }
  auto routed = eval::RunExperiment(W(), ModelProfile::ChatGpt(),
                                    routed_config);
  ASSERT_TRUE(routed.ok()) << routed.status();

  ASSERT_EQ(direct->size(), routed->size());
  for (size_t i = 0; i < direct->size(); ++i) {
    EXPECT_EQ((*direct)[i].rm_rows, (*routed)[i].rm_rows) << i;
    EXPECT_EQ((*direct)[i].galois_cost.num_prompts,
              (*routed)[i].galois_cost.num_prompts)
        << i;
    EXPECT_EQ((*direct)[i].galois_cost.num_batches,
              (*routed)[i].galois_cost.num_batches)
        << i;
  }

  // And a real cascade reports both backends in the cost-stats breakdown.
  eval::ExperimentConfig cascade_config = direct_config;
  cascade_config.options.phase_models["critic"] = "chatgpt";
  auto cascade = eval::RunExperiment(W(), ModelProfile::Flan(),
                                     cascade_config);
  ASSERT_TRUE(cascade.ok()) << cascade.status();
  std::string stats = eval::FormatCostStats(*cascade);
  EXPECT_NE(stats.find("Per-backend spend:"), std::string::npos) << stats;
  EXPECT_NE(stats.find("GPT-3.5-turbo"), std::string::npos) << stats;
  EXPECT_NE(stats.find(ModelProfile::Flan().name), std::string::npos)
      << stats;
}

}  // namespace
}  // namespace galois::core
