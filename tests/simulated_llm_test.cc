// Tests for the simulated LLM: determinism, coverage behaviour, noise
// model invariants, prompt handling, and the cost meter.

#include <gtest/gtest.h>

#include <cmath>

#include "clean/normalize.h"
#include "knowledge/workload.h"
#include "llm/prompt_templates.h"
#include "llm/simulated_llm.h"

namespace galois::llm {
namespace {

const knowledge::SpiderLikeWorkload& W() {
  static const auto* w = []() {
    auto r = knowledge::SpiderLikeWorkload::Create();
    EXPECT_TRUE(r.ok());
    return new knowledge::SpiderLikeWorkload(std::move(r).value());
  }();
  return *w;
}

SimulatedLlm MakeModel(ModelProfile profile = ModelProfile::ChatGpt(),
                       uint64_t seed = 7) {
  return SimulatedLlm(&W().kb(), std::move(profile), &W().catalog(), seed);
}

TEST(SimulatedLlmTest, NameFromProfile) {
  SimulatedLlm m = MakeModel();
  EXPECT_EQ(m.name(), "GPT-3.5-turbo");
}

TEST(SimulatedLlmTest, CompletionsAreDeterministic) {
  SimulatedLlm a = MakeModel();
  SimulatedLlm b = MakeModel();
  KeyScanIntent intent;
  intent.concept_name = "country";
  intent.key_attribute = "name";
  Prompt prompt = BuildKeyScanPrompt(intent);
  auto ca = a.Complete(prompt);
  auto cb = b.Complete(prompt);
  ASSERT_TRUE(ca.ok());
  ASSERT_TRUE(cb.ok());
  EXPECT_EQ(ca.value().text, cb.value().text);
}

TEST(SimulatedLlmTest, DifferentSeedsDiffer) {
  SimulatedLlm a = MakeModel(ModelProfile::ChatGpt(), 1);
  SimulatedLlm b = MakeModel(ModelProfile::ChatGpt(), 2);
  int differing = 0;
  for (const char* country : {"Italy", "Kenya", "Peru", "Hungary"}) {
    auto va = a.NoisyAttribute("country", country, "population");
    auto vb = b.NoisyAttribute("country", country, "population");
    if (va.ok() && vb.ok() && !(va.value() == vb.value())) ++differing;
  }
  EXPECT_GT(differing, 0);
}

TEST(SimulatedLlmTest, PopularEntitiesKnownByEveryModel) {
  // The most popular entities should be known even by the small models.
  for (ModelProfile profile : ModelProfile::AllPaperModels()) {
    SimulatedLlm m = MakeModel(profile);
    EXPECT_TRUE(m.KnowsEntity("country", "United States")) << profile.name;
  }
}

TEST(SimulatedLlmTest, SmallModelsKnowFewerEntities) {
  SimulatedLlm flan = MakeModel(ModelProfile::Flan());
  SimulatedLlm gpt3 = MakeModel(ModelProfile::Gpt3());
  EXPECT_LT(flan.KnownEntities("city").size(),
            gpt3.KnownEntities("city").size());
}

TEST(SimulatedLlmTest, KnownEntitiesSortedByPopularity) {
  SimulatedLlm m = MakeModel();
  auto known = m.KnownEntities("country");
  ASSERT_GT(known.size(), 2u);
  for (size_t i = 1; i < known.size(); ++i) {
    EXPECT_GE(known[i - 1]->popularity, known[i]->popularity);
  }
}

TEST(SimulatedLlmTest, NoisyAttributeStableAcrossCalls) {
  SimulatedLlm m = MakeModel();
  for (const char* country : {"Italy", "Japan", "Peru"}) {
    auto a = m.NoisyAttribute("country", country, "population");
    auto b = m.NoisyAttribute("country", country, "population");
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_EQ(a.value(), b.value()) << country;
  }
}

TEST(SimulatedLlmTest, PerfectProfileReturnsTruth) {
  ModelProfile perfect = ModelProfile::ChatGpt();
  perfect.coverage_floor = 1.0;
  perfect.coverage_gain = 0.0;
  perfect.unknown_rate = 0.0;
  perfect.fact_accuracy = 1.0;
  perfect.numeric_fact_accuracy = 1.0;
  SimulatedLlm m = MakeModel(perfect);
  for (const char* country : {"Italy", "Kenya", "Israel"}) {
    Value noisy =
        m.NoisyAttribute("country", country, "population").value();
    Value truth =
        W().kb().GetAttribute("country", country, "population").value();
    EXPECT_EQ(noisy, truth) << country;
  }
}

TEST(SimulatedLlmTest, ZeroAccuracyAlwaysPerturbsNumerics) {
  ModelProfile wrong = ModelProfile::ChatGpt();
  wrong.coverage_floor = 1.0;
  wrong.coverage_gain = 0.0;
  wrong.unknown_rate = 0.0;
  wrong.fact_accuracy = 0.0;
  wrong.numeric_fact_accuracy = 0.0;
  SimulatedLlm m = MakeModel(wrong);
  Value noisy = m.NoisyAttribute("country", "Italy", "population").value();
  Value truth =
      W().kb().GetAttribute("country", "Italy", "population").value();
  EXPECT_FALSE(noisy == truth);
}

TEST(SimulatedLlmTest, YearPerturbationIsSmallShift) {
  ModelProfile wrong = ModelProfile::ChatGpt();
  wrong.coverage_floor = 1.0;
  wrong.coverage_gain = 0.0;
  wrong.unknown_rate = 0.0;
  wrong.fact_accuracy = 0.0;
  SimulatedLlm m = MakeModel(wrong);
  for (const char* airline : {"KLM", "Qantas", "Lufthansa"}) {
    Value noisy =
        m.NoisyAttribute("airline", airline, "foundedYear").value();
    Value truth =
        W().kb().GetAttribute("airline", airline, "foundedyear").value();
    int64_t delta =
        std::llabs(noisy.int_value() - truth.int_value());
    EXPECT_GE(delta, 1) << airline;
    EXPECT_LE(delta, 5) << airline;
  }
}

TEST(SimulatedLlmTest, UnknownEntityMayFabricate) {
  ModelProfile confident = ModelProfile::Gpt3();
  confident.coverage_floor = 0.0;  // knows nothing
  confident.coverage_gain = 0.0;
  confident.fake_entity_confidence = 1.0;
  SimulatedLlm m = MakeModel(confident);
  Value v = m.NoisyAttribute("country", "Italy", "capital").value();
  EXPECT_FALSE(v.is_null());  // fabricated, not "Unknown"

  ModelProfile humble = confident;
  humble.fake_entity_confidence = 0.0;
  SimulatedLlm h = MakeModel(humble);
  EXPECT_TRUE(
      h.NoisyAttribute("country", "Italy", "capital").value().is_null());
}

TEST(SimulatedLlmTest, StyleIsPerAttributeConsistent) {
  ModelProfile styled = ModelProfile::ChatGpt();
  styled.reference_style_noise = 1.0;
  SimulatedLlm m = MakeModel(styled);
  ASSERT_TRUE(m.UsesNonCanonicalStyle("city", "country"));
  // Every country value of the same attribute renders in the same
  // non-canonical form family (here: ISO codes).
  std::string italy = m.RenderValue("city", "country",
                                    Value::String("Italy"), "Rome");
  std::string france = m.RenderValue("city", "country",
                                     Value::String("France"), "Paris");
  EXPECT_NE(italy, "Italy");
  EXPECT_NE(france, "France");
  EXPECT_EQ(italy.size(), france.size());  // same code family (ISO2/ISO3)
}

TEST(SimulatedLlmTest, NonReferenceAttributesNeverStyled) {
  ModelProfile styled = ModelProfile::ChatGpt();
  styled.reference_style_noise = 1.0;
  SimulatedLlm m = MakeModel(styled);
  EXPECT_FALSE(m.UsesNonCanonicalStyle("country", "population"));
  EXPECT_FALSE(m.UsesNonCanonicalStyle("country", "code"));
}

TEST(SimulatedLlmTest, RenderedNumbersRemainParseable) {
  ModelProfile noisy = ModelProfile::ChatGpt();
  noisy.value_format_noise = 1.0;
  SimulatedLlm m = MakeModel(noisy);
  // Whatever format the model picks, the cleaning layer must parse it to
  // within compact-rounding error.
  for (const char* country : {"Italy", "Japan", "Brazil", "Kenya"}) {
    Value truth =
        W().kb().GetAttribute("country", country, "population").value();
    std::string rendered =
        m.RenderValue("country", "population", truth, country);
    auto parsed = clean::ParseNumber(rendered);
    ASSERT_TRUE(parsed.ok()) << rendered;
    double rel = std::fabs(parsed.value() - truth.AsDouble().value()) /
                 truth.AsDouble().value();
    EXPECT_LT(rel, 0.06) << rendered;
  }
}

TEST(SimulatedLlmTest, RenderedDatesRemainParseable) {
  ModelProfile noisy = ModelProfile::ChatGpt();
  noisy.value_format_noise = 1.0;
  SimulatedLlm m = MakeModel(noisy);
  const knowledge::Entity& mayor =
      W().kb().FindConcept("mayor")->entities[3];
  Value truth = *mayor.FindAttribute("birthdate");
  std::string rendered =
      m.RenderValue("mayor", "birthDate", truth, mayor.key);
  auto parsed = clean::ParseDate(rendered);
  ASSERT_TRUE(parsed.ok()) << rendered;
  EXPECT_EQ(parsed.value(), truth) << rendered;
}

TEST(SimulatedLlmTest, ScanStopsEventually) {
  SimulatedLlm m = MakeModel(ModelProfile::Flan());
  int stop = m.ScanStopPage("city");
  EXPECT_GE(stop, 1);
  EXPECT_LT(stop, 1000);
}

TEST(SimulatedLlmTest, KeyScanPagesAreDisjointAndOrdered) {
  SimulatedLlm m = MakeModel(ModelProfile::Gpt3());
  std::set<std::string> seen;
  for (int page = 0; page < 3; ++page) {
    KeyScanIntent intent;
    intent.concept_name = "city";
    intent.key_attribute = "name";
    intent.page = page;
    auto c = m.Complete(BuildKeyScanPrompt(intent));
    ASSERT_TRUE(c.ok());
    if (clean::IsNoMoreResults(c.value().text)) break;
    for (const std::string& key : clean::SplitList(c.value().text)) {
      EXPECT_TRUE(seen.insert(key).second)
          << key << " repeated on page " << page;
    }
  }
  EXPECT_GT(seen.size(), 10u);
}

TEST(SimulatedLlmTest, FilterCheckAnswersYesNoUnknown) {
  SimulatedLlm m = MakeModel();
  FilterCheckIntent intent;
  intent.concept_name = "country";
  intent.key = "Italy";
  intent.filter.attribute = "continent";
  intent.filter.op = "=";
  intent.filter.value = Value::String("Europe");
  auto c = m.Complete(BuildFilterPrompt(intent));
  ASSERT_TRUE(c.ok());
  EXPECT_TRUE(c.value().text == "Yes." || c.value().text == "No." ||
              c.value().text == "Unknown");
}

TEST(SimulatedLlmTest, AttributeGetUnknownForUnknownEntity) {
  ModelProfile humble = ModelProfile::ChatGpt();
  humble.coverage_floor = 0.0;
  humble.coverage_gain = 0.0;
  humble.fake_entity_confidence = 0.0;
  SimulatedLlm m = MakeModel(humble);
  AttributeGetIntent intent;
  intent.concept_name = "country";
  intent.key = "Italy";
  intent.attribute = "capital";
  auto c = m.Complete(BuildAttributePrompt(intent));
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(c.value().text, "Unknown");
}

TEST(SimulatedLlmTest, CostMeterAccumulates) {
  SimulatedLlm m = MakeModel();
  EXPECT_EQ(m.cost().num_prompts, 0);
  AttributeGetIntent intent;
  intent.concept_name = "country";
  intent.key = "Italy";
  intent.attribute = "capital";
  Prompt p = BuildAttributePrompt(intent);
  ASSERT_TRUE(m.Complete(p).ok());
  EXPECT_EQ(m.cost().num_prompts, 1);
  EXPECT_GT(m.cost().prompt_tokens, 50);  // few-shot preamble counted
  EXPECT_GT(m.cost().simulated_latency_ms, 0.0);
  ASSERT_TRUE(m.Complete(p).ok());
  EXPECT_EQ(m.cost().num_prompts, 2);
  m.ResetCost();
  EXPECT_EQ(m.cost().num_prompts, 0);
}

TEST(SimulatedLlmTest, FreeformRequiresCatalog) {
  SimulatedLlm m(&W().kb(), ModelProfile::ChatGpt(), nullptr, 7);
  FreeformIntent intent;
  intent.question = "What is the capital of France?";
  intent.sql = "SELECT capital FROM country WHERE name = 'France'";
  auto c = m.Complete(BuildFreeformPrompt(intent));
  EXPECT_FALSE(c.ok());
  EXPECT_EQ(c.status().code(), StatusCode::kLlmError);
}

TEST(SimulatedLlmTest, FreeformAnswersGroundedQuestion) {
  SimulatedLlm m = MakeModel();
  FreeformIntent intent;
  intent.question = "What are the names of the countries in Europe?";
  intent.sql = "SELECT name FROM country WHERE continent = 'Europe'";
  auto c = m.Complete(BuildFreeformPrompt(intent));
  ASSERT_TRUE(c.ok()) << c.status();
  EXPECT_FALSE(c.value().text.empty());
}

TEST(SimulatedLlmTest, ChainOfThoughtAddsSteps) {
  SimulatedLlm m = MakeModel();
  FreeformIntent intent;
  intent.question = "What are the names of the countries in Europe?";
  intent.sql = "SELECT name FROM country WHERE continent = 'Europe'";
  intent.chain_of_thought = true;
  auto c = m.Complete(BuildFreeformPrompt(intent));
  ASSERT_TRUE(c.ok());
  EXPECT_NE(c.value().text.find("Step 1"), std::string::npos);
  EXPECT_NE(c.value().text.find("Final answer:"), std::string::npos);
}

}  // namespace
}  // namespace galois::llm
