// Tests for the batch-aware prompt cache and the batch scheduler:
// hit/miss partitioning, in-batch dedupe, order preservation,
// num_batches/cache_hits accounting, chunking by max_batch_size, and
// end-to-end equivalence of batched vs. unbatched GaloisExecutor runs.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/galois_executor.h"
#include "knowledge/workload.h"
#include "llm/batch_scheduler.h"
#include "llm/prompt_cache.h"
#include "llm/simulated_llm.h"

namespace galois::llm {
namespace {

/// Deterministic counting model: completes "echo:<text>" and records every
/// Complete call and every CompleteBatch size, so tests can assert exactly
/// what reached the backend.
class EchoModel : public LanguageModel {
 public:
  const std::string& name() const override { return name_; }

  Result<Completion> Complete(const Prompt& prompt) override {
    ++cost_.num_prompts;
    complete_calls.push_back(prompt.text);
    return Completion{"echo:" + prompt.text};
  }

  Result<std::vector<Completion>> CompleteBatch(
      const std::vector<Prompt>& prompts) override {
    ++cost_.num_batches;
    batch_sizes.push_back(prompts.size());
    std::vector<Completion> out;
    out.reserve(prompts.size());
    for (const Prompt& p : prompts) {
      ++cost_.num_prompts;
      out.push_back(Completion{"echo:" + p.text});
    }
    return out;
  }

  CostMeter cost() const override { return cost_; }
  void ResetCost() override { cost_.Reset(); }

  std::vector<std::string> complete_calls;
  std::vector<size_t> batch_sizes;

 private:
  std::string name_ = "echo";
  CostMeter cost_;
};

Prompt MakePrompt(const std::string& text) {
  Prompt p;
  p.text = text;
  p.intent = FreeformIntent{};
  return p;
}

std::vector<Prompt> MakePrompts(const std::vector<std::string>& texts) {
  std::vector<Prompt> out;
  out.reserve(texts.size());
  for (const std::string& t : texts) out.push_back(MakePrompt(t));
  return out;
}

// --- PromptCache::CompleteBatch --------------------------------------------

TEST(PromptCacheBatchTest, PartitionsHitsFromMisses) {
  EchoModel inner;
  PromptCache cache(&inner);
  ASSERT_TRUE(cache.Complete(MakePrompt("a")).ok());  // prefill

  auto out = cache.CompleteBatch(MakePrompts({"a", "b", "c"}));
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->size(), 3u);
  EXPECT_EQ((*out)[0].text, "echo:a");
  EXPECT_EQ((*out)[1].text, "echo:b");
  EXPECT_EQ((*out)[2].text, "echo:c");
  // Only the misses reached the inner model, as one batch.
  ASSERT_EQ(inner.batch_sizes.size(), 1u);
  EXPECT_EQ(inner.batch_sizes[0], 2u);
  EXPECT_EQ(cache.cost().cache_hits, 1);
  EXPECT_EQ(cache.cost().num_batches, 1);
}

TEST(PromptCacheBatchTest, DedupesRepeatedPromptsWithinBatch) {
  EchoModel inner;
  PromptCache cache(&inner);
  // Repeated keys from a join: the same prompt appears three times.
  auto out = cache.CompleteBatch(MakePrompts({"dup", "b", "dup", "dup"}));
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->size(), 4u);
  for (size_t i : {0u, 2u, 3u}) EXPECT_EQ((*out)[i].text, "echo:dup");
  EXPECT_EQ((*out)[1].text, "echo:b");
  // The inner model was billed exactly two completions, not four.
  ASSERT_EQ(inner.batch_sizes.size(), 1u);
  EXPECT_EQ(inner.batch_sizes[0], 2u);
  EXPECT_EQ(inner.cost().num_prompts, 2);
  // The two elided duplicates count as cache hits.
  EXPECT_EQ(cache.cost().cache_hits, 2);
}

TEST(PromptCacheBatchTest, PreservesInputOrderWithInterleavedHits) {
  EchoModel inner;
  PromptCache cache(&inner);
  ASSERT_TRUE(cache.Complete(MakePrompt("h1")).ok());
  ASSERT_TRUE(cache.Complete(MakePrompt("h2")).ok());

  auto out =
      cache.CompleteBatch(MakePrompts({"m1", "h1", "m2", "h2", "m3"}));
  ASSERT_TRUE(out.ok());
  const char* expected[] = {"echo:m1", "echo:h1", "echo:m2", "echo:h2",
                            "echo:m3"};
  for (size_t i = 0; i < 5; ++i) EXPECT_EQ((*out)[i].text, expected[i]);
  ASSERT_EQ(inner.batch_sizes.size(), 1u);
  EXPECT_EQ(inner.batch_sizes[0], 3u);
}

TEST(PromptCacheBatchTest, FullyCachedBatchSkipsInnerButKeepsBatchCount) {
  EchoModel inner;
  PromptCache cache(&inner);
  ASSERT_TRUE(cache.CompleteBatch(MakePrompts({"a", "b"})).ok());
  const int64_t inner_batches = inner.cost().num_batches;
  const int64_t batches_before = cache.cost().num_batches;

  auto out = cache.CompleteBatch(MakePrompts({"b", "a"}));
  ASSERT_TRUE(out.ok());
  EXPECT_EQ((*out)[0].text, "echo:b");
  EXPECT_EQ((*out)[1].text, "echo:a");
  // No inner round trip, but the saved batch stays attributed.
  EXPECT_EQ(inner.cost().num_batches, inner_batches);
  EXPECT_EQ(cache.cost().num_batches, batches_before + 1);
  EXPECT_EQ(cache.cost().cache_hits, 2);
}

TEST(PromptCacheBatchTest, EmptyBatchIsNoop) {
  EchoModel inner;
  PromptCache cache(&inner);
  auto out = cache.CompleteBatch({});
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(out->empty());
  EXPECT_EQ(cache.cost().num_batches, 0);
  EXPECT_EQ(cache.cost().cache_hits, 0);
}

TEST(PromptCacheBatchTest, ResetCostClearsBatchAttribution) {
  EchoModel inner;
  PromptCache cache(&inner);
  ASSERT_TRUE(cache.CompleteBatch(MakePrompts({"a"})).ok());
  ASSERT_TRUE(cache.CompleteBatch(MakePrompts({"a"})).ok());
  EXPECT_GT(cache.cost().cache_hits, 0);
  cache.ResetCost();
  EXPECT_EQ(cache.cost().cache_hits, 0);
  EXPECT_EQ(cache.cost().num_batches, 0);
  EXPECT_EQ(cache.cost().num_prompts, 0);
}

// --- BatchScheduler --------------------------------------------------------

TEST(BatchSchedulerTest, SplitsFlushByMaxBatchSize) {
  EchoModel model;
  BatchPolicy policy;
  policy.batch = true;
  policy.max_batch_size = 3;
  BatchScheduler scheduler(&model, policy);
  auto out = scheduler.Run(
      MakePrompts({"p0", "p1", "p2", "p3", "p4", "p5", "p6"}));
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->size(), 7u);
  for (size_t i = 0; i < 7; ++i) {
    EXPECT_EQ((*out)[i].text, "echo:p" + std::to_string(i));
  }
  ASSERT_EQ(model.batch_sizes.size(), 3u);  // ceil(7 / 3)
  EXPECT_EQ(model.batch_sizes[0], 3u);
  EXPECT_EQ(model.batch_sizes[1], 3u);
  EXPECT_EQ(model.batch_sizes[2], 1u);
}

TEST(BatchSchedulerTest, DedupesBeforeDispatchInBothModes) {
  for (bool batch : {true, false}) {
    EchoModel model;
    BatchPolicy policy;
    policy.batch = batch;
    BatchScheduler scheduler(&model, policy);
    auto out = scheduler.Run(MakePrompts({"x", "y", "x"}));
    ASSERT_TRUE(out.ok());
    ASSERT_EQ(out->size(), 3u);
    EXPECT_EQ((*out)[0].text, "echo:x");
    EXPECT_EQ((*out)[1].text, "echo:y");
    EXPECT_EQ((*out)[2].text, "echo:x");
    // Two distinct prompts billed, whichever dispatch mode.
    EXPECT_EQ(model.cost().num_prompts, 2);
    EXPECT_EQ(model.cost().num_batches, batch ? 1 : 0);
  }
}

TEST(BatchSchedulerTest, SequentialModeNeverCallsCompleteBatch) {
  EchoModel model;
  BatchPolicy policy;
  policy.batch = false;
  BatchScheduler scheduler(&model, policy);
  ASSERT_TRUE(scheduler.Run(MakePrompts({"a", "b", "c"})).ok());
  EXPECT_TRUE(model.batch_sizes.empty());
  EXPECT_EQ(model.complete_calls.size(), 3u);
}

TEST(BatchSchedulerTest, FlushClearsQueue) {
  EchoModel model;
  BatchScheduler scheduler(&model, BatchPolicy{});
  EXPECT_EQ(scheduler.Add(MakePrompt("a")), 0u);
  EXPECT_EQ(scheduler.Add(MakePrompt("b")), 1u);
  EXPECT_EQ(scheduler.pending(), 2u);
  ASSERT_TRUE(scheduler.Flush().ok());
  EXPECT_EQ(scheduler.pending(), 0u);
  auto empty = scheduler.Flush();
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty->empty());
}

}  // namespace
}  // namespace galois::llm

// --- end-to-end: executor accounting and batched/unbatched equivalence -----

namespace galois::core {
namespace {

const knowledge::SpiderLikeWorkload& W() {
  static const auto* w = []() {
    auto r = knowledge::SpiderLikeWorkload::Create();
    EXPECT_TRUE(r.ok());
    return new knowledge::SpiderLikeWorkload(std::move(r).value());
  }();
  return *w;
}

TEST(CachedBatchedExecutorTest, ColdRunBatchesWarmRunHitsCache) {
  llm::SimulatedLlm inner(&W().kb(), llm::ModelProfile::ChatGpt(),
                          &W().catalog(), 7);
  llm::PromptCache cache(&inner);
  ExecutionOptions opts;
  opts.batch_prompts = true;
  GaloisExecutor galois(&cache, &W().catalog(), opts);
  const char* sql =
      "SELECT name, capital FROM country WHERE continent = 'Europe'";

  auto cold = galois.RunSql(sql);
  ASSERT_TRUE(cold.ok());
  EXPECT_GE(cold->cost.num_batches, 1);
  const int64_t cold_prompts = cold->cost.num_prompts;

  auto warm = galois.RunSql(sql);
  ASSERT_TRUE(warm.ok());
  EXPECT_TRUE(cold->relation.SameContents(warm->relation));
  EXPECT_GT(warm->cost.cache_hits, 0);
  // The warm rerun answers every prompt from cache.
  EXPECT_EQ(warm->cost.num_prompts, 0);
  EXPECT_GT(cold_prompts, 0);
}

TEST(CachedBatchedExecutorTest, MaxBatchSizeSplitsWithoutChangingAnswers) {
  const char* sql =
      "SELECT name, capital FROM country WHERE continent = 'Europe'";
  llm::SimulatedLlm one_batch_model(&W().kb(),
                                    llm::ModelProfile::ChatGpt(),
                                    &W().catalog(), 7);
  ExecutionOptions opts;
  opts.batch_prompts = true;
  GaloisExecutor one_batch(&one_batch_model, &W().catalog(), opts);
  auto rm_whole = one_batch.RunSql(sql);
  ASSERT_TRUE(rm_whole.ok());

  llm::SimulatedLlm split_model(&W().kb(), llm::ModelProfile::ChatGpt(),
                                &W().catalog(), 7);
  opts.max_batch_size = 4;
  GaloisExecutor split(&split_model, &W().catalog(), opts);
  auto rm_split = split.RunSql(sql);
  ASSERT_TRUE(rm_split.ok());

  EXPECT_TRUE(rm_whole->relation.SameContents(rm_split->relation));
  EXPECT_EQ(rm_whole->cost.num_prompts, rm_split->cost.num_prompts);
  EXPECT_GT(rm_split->cost.num_batches, rm_whole->cost.num_batches);
}

TEST(CachedBatchedExecutorTest, BatchedMatchesUnbatchedAcrossWorkload) {
  // Equivalence sample: every selection/aggregate/join query class is
  // represented; batched and unbatched runs must return identical
  // relations and issue the same number of prompts.
  int checked = 0;
  for (const knowledge::QuerySpec& q : W().queries()) {
    if (q.id % 4 != 0) continue;  // sample every 4th query
    llm::SimulatedLlm seq_model(&W().kb(), llm::ModelProfile::ChatGpt(),
                                &W().catalog(), 7);
    GaloisExecutor sequential(&seq_model, &W().catalog());
    auto rm_seq = sequential.RunSql(q.sql);
    ASSERT_TRUE(rm_seq.ok()) << "q" << q.id << ": "
                             << rm_seq.status().ToString();

    llm::SimulatedLlm batch_model(&W().kb(), llm::ModelProfile::ChatGpt(),
                                  &W().catalog(), 7);
    ExecutionOptions opts;
    opts.batch_prompts = true;
    GaloisExecutor batched(&batch_model, &W().catalog(), opts);
    auto rm_batch = batched.RunSql(q.sql);
    ASSERT_TRUE(rm_batch.ok()) << "q" << q.id << ": "
                               << rm_batch.status().ToString();

    EXPECT_TRUE(rm_seq->relation.SameContents(rm_batch->relation))
        << "q" << q.id;
    EXPECT_EQ(rm_seq->cost.num_prompts, rm_batch->cost.num_prompts)
        << "q" << q.id;
    ++checked;
  }
  EXPECT_GE(checked, 5);
}

TEST(CachedBatchedExecutorTest, CachedEqualsUncachedWithVerifyAndBatching) {
  // The cache must be invisible to results even when the critic and the
  // batcher are both on.
  const char* sql = "SELECT name, population FROM country";
  ExecutionOptions opts;
  opts.batch_prompts = true;
  opts.verify_cells = true;

  llm::SimulatedLlm plain_model(&W().kb(), llm::ModelProfile::ChatGpt(),
                                &W().catalog(), 7);
  GaloisExecutor plain(&plain_model, &W().catalog(), opts);
  auto rm_plain = plain.ExecuteSql(sql);
  ASSERT_TRUE(rm_plain.ok());

  llm::SimulatedLlm inner(&W().kb(), llm::ModelProfile::ChatGpt(),
                          &W().catalog(), 7);
  llm::PromptCache cache(&inner);
  GaloisExecutor cached(&cache, &W().catalog(), opts);
  auto rm_cached = cached.ExecuteSql(sql);
  ASSERT_TRUE(rm_cached.ok());

  EXPECT_TRUE(rm_plain->SameContents(*rm_cached));
}

}  // namespace
}  // namespace galois::core
