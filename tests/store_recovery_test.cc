// Crash-injection and corruption recovery for store::ResultStore — the
// journal's whole contract, proven deterministically:
//  * a kill at EVERY byte boundary of the journal (exhaustive prefix
//    truncation — record boundaries and torn mid-record writes alike)
//    reopens cleanly, recovers exactly the committed records, and drops
//    the tail;
//  * randomised bit corruption degrades records to cache misses, never
//    to wrong bytes;
//  * in-process write kills (FaultStoreEnv byte budgets) mark the store
//    read-only without taking the caller down, and the committed prefix
//    survives the next open;
//  * tombstones, clears, vacuum compaction/eviction and a crashed vacuum
//    all preserve the journal's committed state.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <map>
#include <random>
#include <set>
#include <string>
#include <vector>

#include "store/result_store.h"
#include "store/store_format.h"
#include "tests/fault_store_env.h"
#include "types/value.h"

namespace galois::store {
namespace {

using testing::FaultStoreEnv;

/// A fresh store directory under the test temp dir.
std::string StoreDir(const std::string& name) {
  std::string dir = ::testing::TempDir() + "galois_store_" + name;
  std::remove((dir + "/galois.store").c_str());
  std::remove((dir + "/galois.store.tmp").c_str());
  std::remove(dir.c_str());
  return dir;
}

StoreOptions Opts(const std::string& dir) {
  StoreOptions options;
  options.path = dir;
  options.background_vacuum = false;  // deterministic: vacuum inline
  return options;
}

std::unique_ptr<ResultStore> MustOpen(const StoreOptions& options) {
  auto opened = ResultStore::Open(options);
  EXPECT_TRUE(opened.ok()) << opened.status().ToString();
  return std::move(opened).value();
}

/// Mixed-type rows (incl. a double with a long mantissa and a NULL) so
/// recovery equality is a byte-exactness statement, not a formatting one.
std::vector<Tuple> SomeRows(int salt) {
  std::vector<Tuple> rows;
  Tuple a;
  a.push_back(Value::String("key" + std::to_string(salt)));
  a.push_back(Value::Int(1000000007LL * salt));
  a.push_back(Value::Double(0.1 + static_cast<double>(salt) / 3.0));
  rows.push_back(std::move(a));
  Tuple b;
  b.push_back(Value::String("key" + std::to_string(salt) + "b"));
  b.push_back(Value::Null());
  b.push_back(Value::Bool(salt % 2 == 0));
  rows.push_back(std::move(b));
  return rows;
}

std::vector<std::string> SomeColumns() { return {"population", "gdp"}; }

/// Byte-exact comparison via the wire codec (Value::operator== would
/// accept numerically-equal-but-differently-typed values).
std::string EncodeRows(const std::vector<Tuple>& rows) {
  std::string out;
  for (const Tuple& row : rows) {
    for (const Value& v : row) EncodeValue(&out, v);
  }
  return out;
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void WriteFile(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good()) << path;
}

/// All live materialisations as fingerprint -> encoded rows.
std::map<std::string, std::string> Materialisations(ResultStore* store) {
  std::map<std::string, std::string> out;
  store->ForEachMaterialisation([&out](const std::string& store_key,
                                       const std::string&,
                                       const std::string&,
                                       const std::vector<std::string>&,
                                       const std::vector<Tuple>& rows) {
    out[store_key] = EncodeRows(rows);
  });
  return out;
}

std::map<std::string, std::string> Prompts(ResultStore* store) {
  std::map<std::string, std::string> out;
  store->ForEachPrompt([&out](const std::string& model,
                              const std::string& text,
                              const std::string& completion) {
    out[model + "\x1f" + text] = completion;
  });
  return out;
}

TEST(StoreRecoveryTest, RoundTripsAllValueTypesAcrossReopen) {
  const std::string dir = StoreDir("roundtrip");
  std::map<std::string, std::string> expected_mats;
  std::map<std::string, std::string> expected_prompts;
  {
    auto store = MustOpen(Opts(dir));
    for (int i = 0; i < 5; ++i) {
      const std::string fp = "fp" + std::to_string(i);
      auto rows = SomeRows(i);
      ASSERT_TRUE(
          store->PutMaterialisation(fp, SomeColumns(), rows).ok());
      expected_mats[fp] = EncodeRows(rows);
      const std::string text = "prompt " + std::to_string(i);
      ASSERT_TRUE(store->PutPrompt("GPT-3.5-turbo", text, "answer" +
                                   std::to_string(i)).ok());
      expected_prompts["GPT-3.5-turbo\x1f" + text] =
          "answer" + std::to_string(i);
    }
  }
  auto reopened = MustOpen(Opts(dir));
  EXPECT_EQ(Materialisations(reopened.get()), expected_mats);
  EXPECT_EQ(Prompts(reopened.get()), expected_prompts);
  auto stats = reopened->stats();
  EXPECT_EQ(stats.materialisations_recovered, 5);
  EXPECT_EQ(stats.prompts_recovered, 5);
  EXPECT_EQ(stats.records_dropped, 0);
}

TEST(StoreRecoveryTest, BufferedReadFallbackMatchesMmap) {
  const std::string dir = StoreDir("nommap");
  {
    auto store = MustOpen(Opts(dir));
    ASSERT_TRUE(
        store->PutMaterialisation("fp", SomeColumns(), SomeRows(3)).ok());
  }
  StoreOptions no_mmap = Opts(dir);
  no_mmap.use_mmap = false;
  auto reopened = MustOpen(no_mmap);
  EXPECT_EQ(Materialisations(reopened.get()).count("fp"), 1u);
}

// The headline crash matrix: a journal of interleaved records (inserts,
// a replace, a tombstone, a clear) truncated at EVERY byte length —
// every record boundary and every torn mid-record position. Each prefix
// must reopen cleanly, recover exactly the records whose frames landed
// entirely inside the prefix (with replace/erase/clear applied in
// order), and accept new appends afterwards.
TEST(StoreRecoveryTest, KillAtEveryByteRecoversCommittedPrefix) {
  const std::string dir = StoreDir("everybyte");
  {
    auto store = MustOpen(Opts(dir));
    ASSERT_TRUE(store->PutPrompt("m", "p0", "c0").ok());
    ASSERT_TRUE(
        store->PutMaterialisation("fp0", SomeColumns(), SomeRows(0)).ok());
    ASSERT_TRUE(
        store->PutMaterialisation("fp1", SomeColumns(), SomeRows(1)).ok());
    // Replace fp0 (the old record becomes dead bytes).
    ASSERT_TRUE(
        store->PutMaterialisation("fp0", SomeColumns(), SomeRows(9)).ok());
    ASSERT_TRUE(store->EraseMaterialisation("fp1").ok());
    ASSERT_TRUE(store->PutPrompt("m", "p1", "c1").ok());
    ASSERT_TRUE(store->ClearPrompts().ok());
    ASSERT_TRUE(store->PutPrompt("m", "p2", "c2").ok());
  }
  const std::string journal = ReadFile(dir + "/galois.store");
  ASSERT_GT(journal.size(), kFileHeaderSize);

  // Reference scan of the intact journal: frame boundaries + the live
  // state after each committed frame.
  struct Expected {
    size_t end;  // first byte past this frame
    std::map<std::string, std::string> mats;
    std::map<std::string, std::string> prompts;
  };
  std::vector<Expected> timeline;
  {
    std::map<std::string, std::string> mats;
    std::map<std::string, std::string> prompts;
    size_t offset = kFileHeaderSize;
    for (;;) {
      FrameResult frame =
          DecodeFrame(journal.data(), journal.size(), offset);
      ASSERT_NE(frame.status, FrameStatus::kTornTail);
      ASSERT_NE(frame.status, FrameStatus::kBadBody);
      if (frame.status == FrameStatus::kEndOfJournal) break;
      switch (frame.type) {
        case RecordType::kMaterialisation: {
          std::vector<std::string> columns;
          std::vector<Tuple> rows;
          ASSERT_TRUE(
              DecodeMaterialisation(frame.payload, &columns, &rows));
          mats[frame.key] = EncodeRows(rows);
          break;
        }
        case RecordType::kPrompt:
          prompts[frame.key] = frame.payload;
          break;
        case RecordType::kErase:
          mats.erase(frame.key);
          break;
        case RecordType::kClearMaterialisations:
          mats.clear();
          break;
        case RecordType::kClearPrompts:
          prompts.clear();
          break;
      }
      timeline.push_back({frame.next_offset, mats, prompts});
      offset = frame.next_offset;
    }
    ASSERT_EQ(timeline.size(), 8u);
  }

  const std::string crash_dir = StoreDir("everybyte_crash");
  for (size_t len = 0; len <= journal.size(); ++len) {
    SCOPED_TRACE("truncated to " + std::to_string(len) + " bytes");
    // The state a kill at byte `len` must recover: the last frame fully
    // inside the prefix.
    std::map<std::string, std::string> want_mats;
    std::map<std::string, std::string> want_prompts;
    for (const Expected& e : timeline) {
      if (e.end <= len) {
        want_mats = e.mats;
        want_prompts = e.prompts;
      }
    }

    {
      auto opened = ResultStore::Open(Opts(crash_dir));
      ASSERT_TRUE(opened.ok()) << opened.status().ToString();
    }
    WriteFile(crash_dir + "/galois.store", journal.substr(0, len));
    auto store = MustOpen(Opts(crash_dir));
    EXPECT_EQ(Materialisations(store.get()), want_mats);
    EXPECT_EQ(Prompts(store.get()), want_prompts);

    // The reopened journal must keep working: append and re-reopen.
    ASSERT_TRUE(store->PutPrompt("m", "fresh", "after-crash").ok());
    store.reset();
    auto again = MustOpen(Opts(crash_dir));
    want_prompts["m\x1f" "fresh"] = "after-crash";
    EXPECT_EQ(Prompts(again.get()), want_prompts);
    again.reset();
  }
}

TEST(StoreRecoveryTest, InProcessWriteKillMarksStoreReadOnly) {
  const std::string dir = StoreDir("writekill");
  FaultStoreEnv env;
  StoreOptions options = Opts(dir);
  options.env = &env;
  auto store = MustOpen(options);
  ASSERT_TRUE(
      store->PutMaterialisation("fp0", SomeColumns(), SomeRows(0)).ok());

  // Kill the next append halfway through its frame (a torn write).
  env.SetWriteBudget(kFrameHeaderSize + 3);
  Status torn =
      store->PutMaterialisation("fp1", SomeColumns(), SomeRows(1));
  EXPECT_FALSE(torn.ok());
  env.ClearWriteBudget();

  // Dead store: every later Put is refused, nothing throws, the caller
  // (a cache hook) just keeps going.
  EXPECT_FALSE(
      store->PutMaterialisation("fp2", SomeColumns(), SomeRows(2)).ok());
  EXPECT_FALSE(store->PutPrompt("m", "p", "c").ok());
  EXPECT_FALSE(store->Vacuum().ok());
  auto stats = store->stats();
  EXPECT_GE(stats.append_errors, 2);
  store.reset();

  // The committed prefix survives; the torn frame is dropped.
  auto reopened = MustOpen(Opts(dir));
  auto mats = Materialisations(reopened.get());
  EXPECT_EQ(mats.size(), 1u);
  EXPECT_EQ(mats.count("fp0"), 1u);
  EXPECT_EQ(reopened->stats().records_dropped, 1);
}

TEST(StoreRecoveryTest, SyncFailureUnderAlwaysDurabilityGoesReadOnly) {
  const std::string dir = StoreDir("syncfail");
  FaultStoreEnv env;
  StoreOptions options = Opts(dir);
  options.env = &env;
  options.durability = Durability::kAlways;
  auto store = MustOpen(options);
  const int64_t syncs_after_open = env.syncs();
  ASSERT_TRUE(store->PutPrompt("m", "p0", "c0").ok());
  // kAlways: every append carries its own fsync.
  EXPECT_EQ(env.syncs(), syncs_after_open + 1);

  env.FailSyncs(true);
  EXPECT_FALSE(store->PutPrompt("m", "p1", "c1").ok());
  env.FailSyncs(false);
  EXPECT_FALSE(store->PutPrompt("m", "p2", "c2").ok());  // dead stays dead
}

TEST(StoreRecoveryTest, CorruptionFuzzNeverServesWrongBytes) {
  const std::string dir = StoreDir("fuzz");
  std::map<std::string, std::string> truth_mats;
  std::map<std::string, std::string> truth_prompts;
  {
    auto store = MustOpen(Opts(dir));
    for (int i = 0; i < 8; ++i) {
      const std::string fp = "fp" + std::to_string(i);
      auto rows = SomeRows(i);
      ASSERT_TRUE(
          store->PutMaterialisation(fp, SomeColumns(), rows).ok());
      truth_mats[fp] = EncodeRows(rows);
      ASSERT_TRUE(
          store->PutPrompt("m", "p" + std::to_string(i), "c" +
                           std::to_string(i)).ok());
      truth_prompts["m\x1fp" + std::to_string(i)] =
          "c" + std::to_string(i);
    }
  }
  const std::string journal = ReadFile(dir + "/galois.store");
  const std::string fuzz_dir = StoreDir("fuzz_run");

  int total_recovered = 0;
  int total_dropped = 0;
  for (uint32_t trial = 0; trial < 64; ++trial) {
    SCOPED_TRACE("trial " + std::to_string(trial));
    std::mt19937 rng(trial);  // deterministic: failures replay exactly
    std::string corrupted = journal;
    std::uniform_int_distribution<size_t> pos(
        kFileHeaderSize, corrupted.size() - 1);
    std::uniform_int_distribution<int> bit(0, 7);
    const int flips = 1 + static_cast<int>(trial % 4);
    for (int f = 0; f < flips; ++f) {
      corrupted[pos(rng)] ^= static_cast<char>(1 << bit(rng));
    }

    {
      auto opened = ResultStore::Open(Opts(fuzz_dir));
      ASSERT_TRUE(opened.ok()) << opened.status().ToString();
    }
    WriteFile(fuzz_dir + "/galois.store", corrupted);
    auto store = MustOpen(Opts(fuzz_dir));

    // The contract: anything served must be byte-identical to what was
    // stored — corruption may only subtract (cache misses), never alter.
    for (const auto& [fp, rows] : Materialisations(store.get())) {
      auto it = truth_mats.find(fp);
      ASSERT_NE(it, truth_mats.end()) << "served an unknown fingerprint";
      EXPECT_EQ(rows, it->second) << "served WRONG BYTES for " << fp;
      ++total_recovered;
    }
    for (const auto& [key, completion] : Prompts(store.get())) {
      auto it = truth_prompts.find(key);
      ASSERT_NE(it, truth_prompts.end()) << "served an unknown prompt";
      EXPECT_EQ(completion, it->second) << "served WRONG BYTES";
      ++total_recovered;
    }
    total_dropped += static_cast<int>(store->stats().records_dropped);
  }
  // Sanity on the fuzz itself: corruption both dropped records (the
  // flips hit something) and left records recoverable (the flips never
  // wiped everything) across the 64 trials.
  EXPECT_GT(total_dropped, 0);
  EXPECT_GT(total_recovered, 0);
}

TEST(StoreRecoveryTest, CorruptFileHeaderStartsOver) {
  const std::string dir = StoreDir("badheader");
  {
    auto store = MustOpen(Opts(dir));
    ASSERT_TRUE(store->PutPrompt("m", "p", "c").ok());
  }
  std::string journal = ReadFile(dir + "/galois.store");
  journal[3] ^= 0x40;  // break the magic
  WriteFile(dir + "/galois.store", journal);
  auto store = MustOpen(Opts(dir));
  EXPECT_TRUE(Prompts(store.get()).empty());
  EXPECT_EQ(store->stats().records_dropped, 1);
  // And the rewritten journal works.
  ASSERT_TRUE(store->PutPrompt("m", "p2", "c2").ok());
  store.reset();
  auto reopened = MustOpen(Opts(dir));
  EXPECT_EQ(Prompts(reopened.get()).size(), 1u);
}

TEST(StoreRecoveryTest, UnknownRecordTypeIsSkippedNotFatal) {
  const std::string dir = StoreDir("unknowntype");
  {
    auto store = MustOpen(Opts(dir));
    ASSERT_TRUE(store->PutPrompt("m", "before", "b").ok());
  }
  // Append a frame from "a future version" (type 9), then a valid one,
  // by hand: recovery must skip the former and index the latter.
  std::string journal = ReadFile(dir + "/galois.store");
  journal += EncodeFrame(static_cast<RecordType>(9), "k", "future data");
  journal += EncodeFrame(RecordType::kPrompt, PromptKey("m", "after"), "a");
  WriteFile(dir + "/galois.store", journal);

  auto store = MustOpen(Opts(dir));
  auto prompts = Prompts(store.get());
  EXPECT_EQ(prompts.size(), 2u);
  EXPECT_EQ(prompts["m\x1f" "after"], "a");
  EXPECT_EQ(store->stats().records_dropped, 1);
}

TEST(StoreRecoveryTest, VacuumCompactsReplacedRecords) {
  const std::string dir = StoreDir("vacuum_dead");
  auto store = MustOpen(Opts(dir));
  for (int i = 0; i < 40; ++i) {
    ASSERT_TRUE(
        store->PutMaterialisation("fp", SomeColumns(), SomeRows(i)).ok());
  }
  const int64_t before = store->stats().file_bytes;
  ASSERT_TRUE(store->Vacuum().ok());
  auto stats = store->stats();
  EXPECT_LT(stats.file_bytes, before / 10);  // 39 dead frames dropped
  EXPECT_EQ(stats.evictions, 0);
  EXPECT_EQ(stats.vacuums, 1);
  // The surviving record is the LAST write, byte-exact.
  auto mats = Materialisations(store.get());
  ASSERT_EQ(mats.size(), 1u);
  EXPECT_EQ(mats["fp"], EncodeRows(SomeRows(39)));
  store.reset();
  EXPECT_EQ(Materialisations(MustOpen(Opts(dir)).get())["fp"],
            EncodeRows(SomeRows(39)));
}

TEST(StoreRecoveryTest, BudgetVacuumEvictsLeastRecentlyUsed) {
  const std::string dir = StoreDir("vacuum_lru");
  StoreOptions options = Opts(dir);
  // Small budget: a few records fit, the rest must be LRU-evicted by the
  // automatic threshold vacuum (inline, since background_vacuum=false).
  options.max_bytes = 4096;
  auto store = MustOpen(options);
  for (int i = 0; i < 64; ++i) {
    ASSERT_TRUE(store->PutMaterialisation("fp" + std::to_string(i),
                                          SomeColumns(), SomeRows(i))
                    .ok());
    // Keep fp0 hot: it must survive every eviction wave.
    store->TouchMaterialisation("fp0");
  }
  auto stats = store->stats();
  EXPECT_GT(stats.vacuums, 0);
  EXPECT_GT(stats.evictions, 0);
  EXPECT_LE(stats.file_bytes, options.max_bytes);
  auto mats = Materialisations(store.get());
  EXPECT_LT(mats.size(), 64u);
  EXPECT_EQ(mats.count("fp0"), 1u) << "touched entry was evicted";
  EXPECT_EQ(mats.count("fp63"), 1u) << "newest entry was evicted";
  EXPECT_EQ(mats["fp0"], EncodeRows(SomeRows(0)));
  // Reopen sees the compacted journal identically.
  store.reset();
  EXPECT_EQ(Materialisations(MustOpen(Opts(dir)).get()), mats);
}

TEST(StoreRecoveryTest, CrashedVacuumLeavesOldJournalAuthoritative) {
  const std::string dir = StoreDir("vacuum_crash");
  FaultStoreEnv env;
  StoreOptions options = Opts(dir);
  options.env = &env;
  auto store = MustOpen(options);
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(store->PutMaterialisation("fp" + std::to_string(i),
                                          SomeColumns(), SomeRows(i))
                    .ok());
  }
  const auto before = Materialisations(store.get());

  // The vacuum writes its temp file, then "crashes" at the rename.
  env.FailRenames(true);
  EXPECT_FALSE(store->Vacuum().ok());
  store.reset();

  // Reopen: the orphan temp is garbage, the old journal has everything.
  auto reopened = MustOpen(Opts(dir));
  EXPECT_EQ(Materialisations(reopened.get()), before);
}

/// All live materialisations as store key -> (base key, descriptor).
std::map<std::string, std::pair<std::string, std::string>> Descriptors(
    ResultStore* store) {
  std::map<std::string, std::pair<std::string, std::string>> out;
  store->ForEachMaterialisation([&out](const std::string& store_key,
                                       const std::string& base_key,
                                       const std::string& descriptor,
                                       const std::vector<std::string>&,
                                       const std::vector<Tuple>& rows) {
    out[store_key] = {base_key, descriptor};
  });
  return out;
}

TEST(StoreRecoveryTest, DescriptorRecordsRoundTripAcrossReopen) {
  // v2 materialisation records carry the cache's base key and predicate
  // descriptor so subsumption survives a restart; records written
  // without them (the v1 shape) surface with both fields empty.
  const std::string dir = StoreDir("descriptor_roundtrip");
  const std::string base = "table:country|model:GPT-3.5-turbo";
  const std::string desc = std::string("D1\x00\x03pop", 7);  // binary-safe
  {
    auto store = MustOpen(Opts(dir));
    ASSERT_TRUE(store->PutMaterialisation("with", SomeColumns(), SomeRows(1),
                                          base, desc)
                    .ok());
    ASSERT_TRUE(
        store->PutMaterialisation("legacy", SomeColumns(), SomeRows(2)).ok());
  }
  auto reopened = MustOpen(Opts(dir));
  auto descs = Descriptors(reopened.get());
  ASSERT_EQ(descs.size(), 2u);
  EXPECT_EQ(descs["with"], std::make_pair(base, desc));
  EXPECT_EQ(descs["legacy"], std::make_pair(std::string(), std::string()));
  // Row payloads are unaffected by the record version.
  auto mats = Materialisations(reopened.get());
  EXPECT_EQ(mats["with"], EncodeRows(SomeRows(1)));
  EXPECT_EQ(mats["legacy"], EncodeRows(SomeRows(2)));
}

TEST(StoreRecoveryTest, DescriptorFlagSurvivesVacuum) {
  // Vacuum copies raw frames; the header flags byte — and with it the
  // v2 payload interpretation — must survive compaction and reopen.
  const std::string dir = StoreDir("descriptor_vacuum");
  auto store = MustOpen(Opts(dir));
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(store->PutMaterialisation("fp", SomeColumns(), SomeRows(i),
                                          "base", "desc" + std::to_string(i))
                    .ok());
  }
  ASSERT_TRUE(store->Vacuum().ok());
  EXPECT_EQ(Descriptors(store.get())["fp"],
            std::make_pair(std::string("base"), std::string("desc19")));
  store.reset();
  auto reopened = MustOpen(Opts(dir));
  EXPECT_EQ(Descriptors(reopened.get())["fp"],
            std::make_pair(std::string("base"), std::string("desc19")));
  EXPECT_EQ(Materialisations(reopened.get())["fp"], EncodeRows(SomeRows(19)));
}

TEST(StoreRecoveryTest, DurabilityNoneNeverSyncs) {
  const std::string dir = StoreDir("nosync");
  FaultStoreEnv env;
  StoreOptions options = Opts(dir);
  options.env = &env;
  options.durability = Durability::kNone;
  {
    auto store = MustOpen(options);
    for (int i = 0; i < 5; ++i) {
      ASSERT_TRUE(store->PutPrompt("m", "p" + std::to_string(i), "c").ok());
    }
  }
  EXPECT_EQ(env.syncs(), 0);
}

TEST(StoreRecoveryTest, StatsAccounting) {
  const std::string dir = StoreDir("stats");
  auto store = MustOpen(Opts(dir));
  ASSERT_TRUE(
      store->PutMaterialisation("fp", SomeColumns(), SomeRows(1)).ok());
  ASSERT_TRUE(store->PutPrompt("m", "p", "c").ok());
  auto stats = store->stats();
  EXPECT_EQ(stats.appends, 2);
  EXPECT_GT(stats.append_bytes, 0);
  EXPECT_EQ(stats.live_materialisations, 1);
  EXPECT_EQ(stats.live_prompts, 1);
  EXPECT_EQ(stats.file_bytes,
            static_cast<int64_t>(kFileHeaderSize) + stats.append_bytes);
  EXPECT_EQ(stats.live_bytes, stats.append_bytes);
  store.reset();
  auto reopened = MustOpen(Opts(dir));
  auto recovered = reopened->stats();
  EXPECT_EQ(recovered.materialisations_recovered, 1);
  EXPECT_EQ(recovered.prompts_recovered, 1);
  EXPECT_GE(recovered.recovery_micros, 0);
}

}  // namespace
}  // namespace galois::store
