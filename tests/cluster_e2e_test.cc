// The cluster layer's acceptance contract, end to end over real loopback
// sockets: the full 46-query workload scattered across a two-node
// galoisd cluster is byte-identical to the single-Database facade —
// same relation renderings, same per-query CostMeters (by-model slices
// included), same cache/prefetch counters — and stays byte-identical
// when one node is killed mid-query: the lost shard re-dispatches to the
// survivor with exactly the re-dispatched round trips re-billed (the
// dead node answers nothing, so meter equality with the facade IS the
// proof), and the dead node's breaker is recorded open in cluster stats.
//
// Everything is hermetic: node servers run in-process on ephemeral
// loopback ports over same-seed simulated backends; the "killed" node is
// a raw TCP harness that accepts the shard request and then hard-resets
// the connection (SO_LINGER 0) — the coordinator-visible signature of a
// SIGKILLed daemon.

#include <gtest/gtest.h>

#include <sys/socket.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "api/database.h"
#include "cluster/cluster_coordinator.h"
#include "knowledge/workload.h"
#include "net/frame.h"
#include "net/galois_server.h"
#include "net/socket.h"

namespace galois {
namespace {

using cluster::ClusterStats;
using net::GaloisServer;
using net::ServerOptions;

const knowledge::SpiderLikeWorkload& W() {
  static const auto* w = []() {
    auto r = knowledge::SpiderLikeWorkload::Create();
    EXPECT_TRUE(r.ok());
    return new knowledge::SpiderLikeWorkload(std::move(r).value());
  }();
  return *w;
}

/// A Database over the builtin simulated backend — identical options on
/// every arm (facade, nodes, coordinator) so comparisons hold query by
/// query. All arms share DatabaseOptions' default llm_seed.
std::unique_ptr<Database> OpenSimDb(bool table_cache = true) {
  DatabaseOptions options;
  options.workload = &W();
  options.enable_materialisation_cache = table_cache;
  auto db = Database::Open(std::move(options));
  EXPECT_TRUE(db.ok()) << db.status().ToString();
  return std::move(db).value();
}

/// One in-process cluster node: its own Database + GaloisServer on an
/// ephemeral loopback port.
struct Node {
  explicit Node(bool table_cache = true)
      : db(OpenSimDb(table_cache)), server(db.get(), ServerOptions()) {
    EXPECT_TRUE(server.Start().ok());
  }
  ~Node() { server.Shutdown(); }
  std::unique_ptr<Database> db;
  GaloisServer server;
};

std::unique_ptr<Database> OpenClusterDb(const std::vector<int>& ports,
                                        cluster::ClusterOptions base = {}) {
  DatabaseOptions options;
  options.workload = &W();
  options.enable_materialisation_cache = true;
  options.cluster = std::move(base);
  for (int port : ports) {
    cluster::NodeSpec spec;
    spec.port = port;
    options.cluster.nodes.push_back(spec);
  }
  auto db = Database::Open(std::move(options));
  EXPECT_TRUE(db.ok()) << db.status().ToString();
  return db.ok() ? std::move(db).value() : nullptr;
}

/// Asserts one query's cluster result byte-identical to the facade's:
/// relation CSV, the full cost meter (latency with FP-reassociation
/// tolerance — shard meters sum in a different order than the facade's
/// sequential accumulation), and every cache/prefetch counter.
void ExpectIdentical(const QueryResult& got, const QueryResult& expected,
                     int query_id) {
  EXPECT_EQ(got.relation.ToCsv(), expected.relation.ToCsv())
      << "q" << query_id << " diverged through the cluster";
  EXPECT_EQ(got.cost.num_prompts, expected.cost.num_prompts) << "q" << query_id;
  EXPECT_EQ(got.cost.num_batches, expected.cost.num_batches) << "q" << query_id;
  EXPECT_EQ(got.cost.prompt_tokens, expected.cost.prompt_tokens)
      << "q" << query_id;
  EXPECT_EQ(got.cost.completion_tokens, expected.cost.completion_tokens)
      << "q" << query_id;
  EXPECT_EQ(got.cost.cache_hits, expected.cost.cache_hits) << "q" << query_id;
  EXPECT_NEAR(got.cost.simulated_latency_ms, expected.cost.simulated_latency_ms,
              1e-6 * (1.0 + expected.cost.simulated_latency_ms))
      << "q" << query_id;
  ASSERT_EQ(got.cost.by_model.size(), expected.cost.by_model.size())
      << "q" << query_id;
  for (const auto& [model, usage] : expected.cost.by_model) {
    ASSERT_TRUE(got.cost.by_model.count(model)) << "q" << query_id;
    const llm::ModelUsage& got_usage = got.cost.by_model.at(model);
    EXPECT_EQ(got_usage.num_prompts, usage.num_prompts)
        << "q" << query_id << " " << model;
    EXPECT_EQ(got_usage.prompt_tokens, usage.prompt_tokens)
        << "q" << query_id << " " << model;
    EXPECT_EQ(got_usage.completion_tokens, usage.completion_tokens)
        << "q" << query_id << " " << model;
    EXPECT_EQ(got_usage.num_batches, usage.num_batches)
        << "q" << query_id << " " << model;
    EXPECT_NEAR(got_usage.simulated_latency_ms, usage.simulated_latency_ms,
                1e-6 * (1.0 + usage.simulated_latency_ms))
        << "q" << query_id << " " << model;
  }
  EXPECT_EQ(got.table_cache_lookups, expected.table_cache_lookups)
      << "q" << query_id;
  EXPECT_EQ(got.table_cache_hits, expected.table_cache_hits)
      << "q" << query_id;
  EXPECT_EQ(got.table_cache_exact_hits, expected.table_cache_exact_hits)
      << "q" << query_id;
  EXPECT_EQ(got.table_cache_subsumption_hits,
            expected.table_cache_subsumption_hits)
      << "q" << query_id;
  EXPECT_EQ(got.table_cache_store_hits, expected.table_cache_store_hits)
      << "q" << query_id;
  EXPECT_EQ(got.scan_pages_prefetched, expected.scan_pages_prefetched)
      << "q" << query_id;
  EXPECT_EQ(got.scan_pages_overfetched, expected.scan_pages_overfetched)
      << "q" << query_id;
  EXPECT_FALSE(got.physical_plan.empty()) << "q" << query_id;
  EXPECT_GE(got.wall_ms, 0.0) << "q" << query_id;
}

/// A node that dies mid-query, as the coordinator sees it: accepts the
/// connection, reads the shard request (so the query is in flight), then
/// hard-resets via SO_LINGER(0) + close — a SIGKILLed daemon's RST, not
/// an orderly FIN.
class DeadNode {
 public:
  DeadNode() {
    EXPECT_TRUE(listener_.Bind("127.0.0.1", 0, 8).ok());
    thread_ = std::thread([this] { Loop(); });
  }
  ~DeadNode() {
    stop_.store(true);
    if (thread_.joinable()) thread_.join();
    listener_.Close();
  }
  int port() const { return listener_.port(); }

 private:
  void Loop() {
    while (!stop_.load()) {
      auto fd = listener_.Accept(50);
      if (!fd.ok()) return;  // listener broke (test teardown)
      if (!fd.value().valid()) continue;  // timeout; re-check stop flag
      // Read whatever request arrives so the kill lands mid-query...
      net::ReadFrame(fd.value().get(), net::NowMs() + 1000).status();
      // ...then RST instead of FIN: closing with SO_LINGER(0) discards
      // the socket abortively, exactly like process death.
      struct linger lg;
      lg.l_onoff = 1;
      lg.l_linger = 0;
      ::setsockopt(fd.value().get(), SOL_SOCKET, SO_LINGER, &lg, sizeof(lg));
    }
  }

  net::Listener listener_;
  std::atomic<bool> stop_{false};
  std::thread thread_;
};

// ---------------------------------------------------------------------
// The headline: byte-identical through a healthy two-node cluster.
// ---------------------------------------------------------------------

TEST(ClusterE2eTest, WorkloadByteIdenticalThroughTwoNodeCluster) {
  // Facade arm and cluster arm open separate Databases with identical
  // options, so neither run's caches can launder the other's results.
  auto facade_db = OpenSimDb();
  Session facade = facade_db->CreateSession();

  Node node_a;
  Node node_b;
  auto cluster_db =
      OpenClusterDb({node_a.server.port(), node_b.server.port()});
  ASSERT_NE(nullptr, cluster_db);
  ASSERT_NE(nullptr, cluster_db->cluster());
  Session clustered = cluster_db->CreateSession();

  for (const knowledge::QuerySpec& query : W().queries()) {
    auto expected = facade.Query(query.sql);
    ASSERT_TRUE(expected.ok()) << "q" << query.id << ": " << expected.status();
    auto got = clustered.Query(query.sql);
    ASSERT_TRUE(got.ok()) << "q" << query.id << ": " << got.status();
    ExpectIdentical(got.value(), expected.value(), query.id);
  }

  // Both nodes took traffic (table affinity splits the workload's
  // tables across them) and nothing ever faulted or re-dispatched.
  ClusterStats stats = cluster_db->cluster()->stats();
  EXPECT_GT(stats.queries, 0);
  EXPECT_EQ(stats.redispatches, 0);
  ASSERT_EQ(2u, stats.nodes.size());
  for (const auto& node : stats.nodes) {
    EXPECT_GT(node.shards_dispatched, 0) << node.endpoint;
    EXPECT_EQ(node.shards_dispatched, node.shards_ok) << node.endpoint;
    EXPECT_EQ(0, node.faults) << node.endpoint;
    EXPECT_FALSE(node.breaker_open) << node.endpoint;
  }
  EXPECT_FALSE(stats.ToString().empty());
  // The daemon side served the shards as partials.
  EXPECT_GT(node_a.server.stats().partials_ok, 0);
  EXPECT_GT(node_b.server.stats().partials_ok, 0);
}

// ---------------------------------------------------------------------
// Failover: a node killed mid-query costs nothing but re-dispatches.
// ---------------------------------------------------------------------

TEST(ClusterE2eTest, NodeKilledMidQueryStaysByteIdenticalViaRedispatch) {
  auto facade_db = OpenSimDb();
  Session facade = facade_db->CreateSession();

  // Node A is real; node B accepts shard requests and then dies
  // mid-query (RST after reading the request). Cooldown is set long so
  // the opened breaker is still observable after the workload.
  Node node_a;
  DeadNode node_b;
  cluster::ClusterOptions copts;
  copts.failure_threshold = 3;
  copts.cooldown_ms = 60 * 1000;
  auto cluster_db =
      OpenClusterDb({node_a.server.port(), node_b.port()}, copts);
  ASSERT_NE(nullptr, cluster_db);
  Session clustered = cluster_db->CreateSession();

  for (const knowledge::QuerySpec& query : W().queries()) {
    auto expected = facade.Query(query.sql);
    ASSERT_TRUE(expected.ok()) << "q" << query.id << ": " << expected.status();
    auto got = clustered.Query(query.sql);
    ASSERT_TRUE(got.ok()) << "q" << query.id << ": " << got.status();
    // Byte-identical relations AND meters: the dead node never answered,
    // so the survivor's re-run is the only billing — exactly the
    // re-dispatched round trips, nothing double-counted.
    ExpectIdentical(got.value(), expected.value(), query.id);
  }

  ClusterStats stats = cluster_db->cluster()->stats();
  // Shards whose affinity pointed at the dead node were re-dispatched to
  // the survivor...
  EXPECT_GT(stats.redispatches, 0);
  ASSERT_EQ(2u, stats.nodes.size());
  const auto& survivor = stats.nodes[0];
  const auto& dead = stats.nodes[1];
  // ...the dead node's consecutive faults opened its breaker (recorded
  // open in cluster stats, with the faults that tripped it)...
  EXPECT_TRUE(dead.breaker_open) << stats.ToString();
  EXPECT_EQ("open", dead.breaker);
  EXPECT_GE(dead.faults, 3);
  EXPECT_EQ(0, dead.shards_ok);
  // ...and the survivor absorbed every shard without a single fault.
  EXPECT_EQ(0, survivor.faults);
  EXPECT_GT(survivor.shards_ok, 0);
  EXPECT_FALSE(survivor.breaker_open);
}

// ---------------------------------------------------------------------
// Key-range splitting: relations stay identical when slices fan out.
// ---------------------------------------------------------------------

TEST(ClusterE2eTest, KeyRangeSplitMergesByteIdenticalRelations) {
  // Both arms run uncached: key-range slices bypass the node
  // materialisation caches by design (a slice cached under the full
  // descriptor would poison them), so the honest relation-identity
  // contract is against the facade's uncached execution — same scan,
  // same per-key verdicts, just split.
  auto facade_db = OpenSimDb(/*table_cache=*/false);
  Session facade = facade_db->CreateSession();

  Node node_a(/*table_cache=*/false);
  Node node_b(/*table_cache=*/false);
  cluster::ClusterOptions copts;
  copts.split_key_ranges = true;
  auto cluster_db =
      OpenClusterDb({node_a.server.port(), node_b.server.port()}, copts);
  ASSERT_NE(nullptr, cluster_db);
  Session clustered = cluster_db->CreateSession();

  // Slices partition the scan's key order, so concatenation in slice
  // order must reproduce the unsharded relation exactly. (Meters are NOT
  // facade-identical in this mode — every slice re-runs the key scan and
  // slices bypass the node caches — so only relations are compared.)
  for (const knowledge::QuerySpec& query : W().queries()) {
    auto expected = facade.Query(query.sql);
    ASSERT_TRUE(expected.ok()) << "q" << query.id << ": " << expected.status();
    auto got = clustered.Query(query.sql);
    ASSERT_TRUE(got.ok()) << "q" << query.id << ": " << got.status();
    EXPECT_EQ(got->relation.ToCsv(), expected->relation.ToCsv())
        << "q" << query.id << " diverged under key-range splitting";
  }

  // Two slices per shard means more dispatches than shards.
  ClusterStats stats = cluster_db->cluster()->stats();
  EXPECT_GT(stats.shards_dispatched, stats.queries);
  EXPECT_EQ(stats.redispatches, 0);
}

// ---------------------------------------------------------------------
// Routing edges.
// ---------------------------------------------------------------------

TEST(ClusterE2eTest, QueriesWithoutLlmTablesRunLocally) {
  Node node_a;
  auto cluster_db = OpenClusterDb({node_a.server.port()});
  ASSERT_NE(nullptr, cluster_db);
  Session session = cluster_db->CreateSession();

  auto result =
      session.Query("SELECT e.name FROM DB.Employees e WHERE e.salary > 50000");
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(0, result->cost.num_prompts);

  ClusterStats stats = cluster_db->cluster()->stats();
  EXPECT_EQ(1, stats.queries_local);
  EXPECT_EQ(0, stats.queries);
  EXPECT_EQ(0, node_a.server.stats().partials_started);
}

TEST(ClusterE2eTest, ProvenanceQueriesRunLocallyWithTraces) {
  Node node_a;
  auto cluster_db = OpenClusterDb({node_a.server.port()});
  ASSERT_NE(nullptr, cluster_db);
  core::ExecutionOptions options = cluster_db->default_options();
  options.record_provenance = true;
  Session session = cluster_db->CreateSession(options);

  auto result = session.Query(W().queries().front().sql);
  ASSERT_TRUE(result.ok()) << result.status();
  // Traces do not travel the wire; the provenance run stayed local and
  // produced one (the scan record at minimum — key-only queries retrieve
  // no cells).
  EXPECT_FALSE(result->trace.scans.empty() && result->trace.cells.empty());
  EXPECT_EQ(0, cluster_db->cluster()->stats().queries);
  EXPECT_EQ(0, node_a.server.stats().partials_started);
}

TEST(ClusterE2eTest, OpenFailsWhenNoNodeIsReachable) {
  // Bind + close to get a port that is (very likely) not listening.
  net::Listener listener;
  ASSERT_TRUE(listener.Bind("127.0.0.1", 0, 4).ok());
  int dead_port = listener.port();
  listener.Close();

  DatabaseOptions options;
  options.workload = &W();
  cluster::NodeSpec spec;
  spec.port = dead_port;
  options.cluster.nodes.push_back(spec);
  options.cluster.connect_timeout_ms = 300;
  auto db = Database::Open(std::move(options));
  ASSERT_FALSE(db.ok());
  EXPECT_EQ(StatusCode::kIoError, db.status().code());
}

}  // namespace
}  // namespace galois
