// The persistent store's headline contract, end to end: run the full
// 46-query workload, kill the process (destroy the Database), open a
// fresh one over the same store directory, and the rerun is
// BYTE-IDENTICAL with ZERO LLM round trips — every table comes from the
// warm-started materialisation cache, every stray prompt from the
// preloaded prompt cache, and the transport's own meter (an external
// SimulatedLlm we hold) proves nothing reached the model.
//
// Also in the TSan CI net: a concurrent-sessions hammer where many
// threads' cache traffic funnels into one shared journal (appends,
// touches, vacuums, stats snapshots racing), plus the prompt-store-only
// warm path and per-model completion attribution.

#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "api/database.h"
#include "knowledge/workload.h"
#include "llm/simulated_llm.h"

namespace galois {
namespace {

const knowledge::SpiderLikeWorkload& W() {
  static const auto* w = []() {
    auto r = knowledge::SpiderLikeWorkload::Create();
    EXPECT_TRUE(r.ok());
    return new knowledge::SpiderLikeWorkload(std::move(r).value());
  }();
  return *w;
}

std::string StoreDir(const std::string& name) {
  std::string dir = ::testing::TempDir() + "galois_e2e_" + name;
  std::remove((dir + "/galois.store").c_str());
  std::remove((dir + "/galois.store.tmp").c_str());
  std::remove(dir.c_str());
  return dir;
}

/// A store-backed Database over an external SimulatedLlm whose meter we
/// keep: the transport-level round-trip count no cache can fake.
std::unique_ptr<Database> OpenStoreDb(const std::string& store_dir,
                                      llm::LanguageModel* transport,
                                      bool table_cache) {
  DatabaseOptions options;
  options.workload = &W();
  BackendSpec spec;
  spec.name = "sim";
  spec.external = transport;
  spec.prompt_cache = true;  // completions must be captured to persist
  options.backends.push_back(std::move(spec));
  options.enable_materialisation_cache = table_cache;
  options.store.path = store_dir;
  options.store.background_vacuum = false;  // deterministic
  auto db = Database::Open(std::move(options));
  EXPECT_TRUE(db.ok()) << db.status().ToString();
  return std::move(db).value();
}

llm::SimulatedLlm MakeTransport() {
  return llm::SimulatedLlm(&W().kb(), llm::ModelProfile::ChatGpt(),
                           &W().catalog(), /*seed=*/7);
}

TEST(StoreE2eTest, ColdProcessRerunIsByteIdenticalWithZeroRoundTrips) {
  const std::string dir = StoreDir("workload");

  // --- process 1: the paying run -------------------------------------
  std::vector<std::string> cold_csv;
  int64_t cold_round_trips = 0;
  {
    llm::SimulatedLlm transport = MakeTransport();
    auto db = OpenStoreDb(dir, &transport, /*table_cache=*/true);
    Session session = db->CreateSession();
    for (const knowledge::QuerySpec& query : W().queries()) {
      auto result = session.Query(query.sql);
      ASSERT_TRUE(result.ok())
          << "q" << query.id << ": " << result.status();
      cold_csv.push_back(result->relation.ToCsv());
      // Nothing is warm yet: no store hits on the paying run.
      EXPECT_EQ(result->table_cache_store_hits, 0) << "q" << query.id;
      EXPECT_EQ(result->cost.store_hits, 0) << "q" << query.id;
    }
    cold_round_trips = transport.cost().num_prompts;
    EXPECT_GT(cold_round_trips, 0);
    auto stats = db->store()->stats();
    EXPECT_GT(stats.live_materialisations, 0);
    EXPECT_GT(stats.live_prompts, 0);
    EXPECT_EQ(stats.append_errors, 0);
  }  // Database destroyed = process exit; kOnClose syncs the journal.

  // --- process 2: a cold process over the same directory -------------
  llm::SimulatedLlm transport = MakeTransport();
  auto db = OpenStoreDb(dir, &transport, /*table_cache=*/true);
  {
    auto stats = db->store()->stats();
    EXPECT_GT(stats.materialisations_recovered, 0);
    EXPECT_GT(stats.prompts_recovered, 0);
    EXPECT_EQ(stats.records_dropped, 0);
  }
  Session session = db->CreateSession();
  int64_t store_served_tables = 0;
  size_t i = 0;
  for (const knowledge::QuerySpec& query : W().queries()) {
    auto result = session.Query(query.sql);
    ASSERT_TRUE(result.ok()) << "q" << query.id << ": " << result.status();
    // Byte-identical: the exact CSV rendering, not just set equality.
    EXPECT_EQ(result->relation.ToCsv(), cold_csv[i])
        << "q" << query.id << " diverged after warm start";
    // Zero LLM round trips, per query.
    EXPECT_EQ(result->cost.num_prompts, 0)
        << "q" << query.id << " paid the LLM again";
    store_served_tables += result->table_cache_store_hits;
    ++i;
  }
  // And at the transport itself: the model was never called.
  EXPECT_EQ(transport.cost().num_prompts, 0);
  EXPECT_GT(store_served_tables, 0) << "no table came from the store";
}

TEST(StoreE2eTest, PromptStoreAloneServesEveryCompletion) {
  const std::string dir = StoreDir("prompts_only");
  const std::string sql =
      "SELECT name, capital FROM country WHERE continent = 'Europe'";

  // Paying run WITHOUT a materialisation cache: only prompt completions
  // are journaled.
  std::string cold_csv;
  {
    llm::SimulatedLlm transport = MakeTransport();
    auto db = OpenStoreDb(dir, &transport, /*table_cache=*/false);
    auto result = db->CreateSession().Query(sql);
    ASSERT_TRUE(result.ok()) << result.status();
    cold_csv = result->relation.ToCsv();
    EXPECT_GT(transport.cost().num_prompts, 0);
    EXPECT_GT(db->store()->stats().live_prompts, 0);
    EXPECT_EQ(db->store()->stats().live_materialisations, 0);
  }

  // Warm process: every prompt the executor issues is answered from the
  // preloaded prompt cache — zero transport round trips even with no
  // table-level cache at all.
  llm::SimulatedLlm transport = MakeTransport();
  auto db = OpenStoreDb(dir, &transport, /*table_cache=*/false);
  auto result = db->CreateSession().Query(sql);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->relation.ToCsv(), cold_csv);
  EXPECT_EQ(transport.cost().num_prompts, 0);
  EXPECT_GT(result->cost.store_hits, 0);
  EXPECT_EQ(result->table_cache_store_hits, 0);  // no table cache exists
}

TEST(StoreE2eTest, PromptRecordsNeverCrossModels) {
  // Prompt records are keyed by the transport's MODEL name, not the
  // backend label: swapping the model under an unchanged label must not
  // feed it another model's completions.
  const std::string dir = StoreDir("per_model");
  const std::string sql =
      "SELECT name, population FROM city WHERE country = 'Italy'";

  // Paying run: backend "sim" over the ChatGPT-profile model.
  {
    llm::SimulatedLlm transport = MakeTransport();
    auto db = OpenStoreDb(dir, &transport, /*table_cache=*/false);
    ASSERT_TRUE(db->CreateSession().Query(sql).ok());
    EXPECT_GT(db->store()->stats().live_prompts, 0);
  }

  // Warm open: same backend label, but a Flan-profile model underneath.
  // The journaled ChatGPT completions must NOT preload it.
  llm::SimulatedLlm other(&W().kb(), llm::ModelProfile::Flan(),
                          &W().catalog(), /*seed=*/7);
  auto db = OpenStoreDb(dir, &other, /*table_cache=*/false);
  auto result = db->CreateSession().Query(sql);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_GT(other.cost().num_prompts, 0)
      << "completions leaked across model names";
  EXPECT_EQ(result->cost.store_hits, 0);
}

// The TSan target: many sessions' queries funnel their cache traffic
// into ONE shared journal — concurrent appends (inserts), touches
// (hits), stats snapshots and an explicit vacuum race on the store
// mutex. Results must still be correct, and a reopen must recover a
// coherent journal.
TEST(StoreE2eTest, ConcurrentSessionsHammerSharedStore) {
  const std::string dir = StoreDir("hammer");
  const std::vector<std::string> queries = {
      "SELECT name, capital FROM country WHERE continent = 'Europe'",
      "SELECT name, population FROM city WHERE country = 'Italy'",
      "SELECT name, speakers FROM language",
      "SELECT name, foundedYear FROM airline",
  };

  std::vector<std::string> reference;
  {
    llm::SimulatedLlm transport = MakeTransport();
    auto db = OpenStoreDb(dir, &transport, /*table_cache=*/true);

    // Sequential reference pass (also the journal's paying pass).
    Session ref_session = db->CreateSession();
    for (const std::string& sql : queries) {
      auto result = ref_session.Query(sql);
      ASSERT_TRUE(result.ok()) << sql << ": " << result.status();
      reference.push_back(result->relation.ToCsv());
    }

    // 6 sessions x 4 queries in flight at once: every hit Touches the
    // store, every (rare) insert appends, while this thread polls stats
    // and vacuums underneath them.
    std::vector<Session> sessions;
    std::vector<AsyncQuery> in_flight;
    for (int s = 0; s < 6; ++s) {
      sessions.push_back(db->CreateSession());
      for (const std::string& sql : queries) {
        in_flight.push_back(sessions.back().QueryAsync(sql));
      }
    }
    for (int poke = 0; poke < 8; ++poke) {
      (void)db->store()->stats();
      if (poke == 3) (void)db->store()->Vacuum();
    }
    for (size_t i = 0; i < in_flight.size(); ++i) {
      auto result = in_flight[i].Join();
      ASSERT_TRUE(result.ok()) << result.status();
      EXPECT_EQ(result->relation.ToCsv(),
                reference[i % queries.size()]);
    }
    EXPECT_EQ(db->store()->stats().append_errors, 0);
  }

  // The hammered journal reopens coherent and fully warm.
  llm::SimulatedLlm transport = MakeTransport();
  auto db = OpenStoreDb(dir, &transport, /*table_cache=*/true);
  Session session = db->CreateSession();
  for (size_t i = 0; i < queries.size(); ++i) {
    auto result = session.Query(queries[i]);
    ASSERT_TRUE(result.ok()) << result.status();
    EXPECT_EQ(result->relation.ToCsv(), reference[i]);
    EXPECT_EQ(result->cost.num_prompts, 0);
  }
  EXPECT_EQ(transport.cost().num_prompts, 0);
}

TEST(StoreE2eTest, ClearedCacheStaysClearedAcrossRestart) {
  const std::string dir = StoreDir("clear");
  const std::string sql = "SELECT name, speakers FROM language";
  {
    llm::SimulatedLlm transport = MakeTransport();
    auto db = OpenStoreDb(dir, &transport, /*table_cache=*/true);
    ASSERT_TRUE(db->CreateSession().Query(sql).ok());
    EXPECT_GT(db->store()->stats().live_materialisations, 0);
    // A cache clear must persist: the journal gets a clear marker.
    db->materialisation_cache()->Clear();
    EXPECT_EQ(db->store()->stats().live_materialisations, 0);
  }
  llm::SimulatedLlm transport = MakeTransport();
  auto db = OpenStoreDb(dir, &transport, /*table_cache=*/true);
  EXPECT_EQ(db->store()->stats().materialisations_recovered, 0)
      << "cleared tables were resurrected by the reopen";
  // The query still works — paid again, as a clear demands.
  auto result = db->CreateSession().Query(sql);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->table_cache_store_hits, 0);
}

}  // namespace
}  // namespace galois
