// Fault-injection suite for the multi-backend transport stack: HttpLlm
// over a loopback FakeLlmServer, with ResilientLlm's retry / backoff /
// rate-limit / deadline / circuit-breaker policy driven hermetically
// (scripted fault schedules server-side, fake clock client-side).

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <vector>

#include "knowledge/workload.h"
#include "llm/http_llm.h"
#include "llm/prompt_templates.h"
#include "llm/resilience.h"
#include "llm/simulated_llm.h"
#include "tests/fake_llm_server.h"

namespace galois::llm {
namespace {

using galois::tests::FakeLlmServer;

const knowledge::SpiderLikeWorkload& W() {
  static const auto* w = []() {
    auto r = knowledge::SpiderLikeWorkload::Create();
    EXPECT_TRUE(r.ok());
    return new knowledge::SpiderLikeWorkload(std::move(r).value());
  }();
  return *w;
}

std::unique_ptr<SimulatedLlm> MakeBacking() {
  return std::make_unique<SimulatedLlm>(&W().kb(), ModelProfile::ChatGpt(),
                                        &W().catalog());
}

Prompt AttributePrompt(const std::string& key = "Italy") {
  AttributeGetIntent intent;
  intent.concept_name = "country";
  intent.key = key;
  intent.attribute = "capital";
  intent.attribute_description = "capital city";
  intent.expected_type = DataType::kString;
  return BuildAttributePrompt(intent);
}

std::vector<Prompt> AttributePrompts(std::initializer_list<const char*> keys) {
  std::vector<Prompt> prompts;
  for (const char* key : keys) prompts.push_back(AttributePrompt(key));
  return prompts;
}

/// Fake clock whose sleep() advances time and records every delay —
/// the retry policy runs instantly and every backoff becomes assertable.
struct FakeClock {
  std::atomic<int64_t> now_ms{0};
  std::mutex mu;
  std::vector<int64_t> sleeps;

  void Install(ResilienceOptions* options) {
    options->now_ms = [this] { return now_ms.load(); };
    options->sleep_ms = [this](int64_t ms) {
      now_ms.fetch_add(ms);
      std::lock_guard<std::mutex> lock(mu);
      sleeps.push_back(ms);
    };
  }
};

// --- transport happy path --------------------------------------------------

TEST(HttpLlmTest, LoopbackCompletionMatchesInProcessModel) {
  auto backing = MakeBacking();
  FakeLlmServer server(backing.get());
  ASSERT_TRUE(server.Start().ok());

  HttpLlm http(server.ClientOptions());
  auto over_http = http.Complete(AttributePrompt());
  ASSERT_TRUE(over_http.ok()) << over_http.status();

  auto direct = MakeBacking()->Complete(AttributePrompt());
  ASSERT_TRUE(direct.ok());
  EXPECT_EQ(over_http.value().text, direct.value().text);
  EXPECT_EQ(http.name(), "GPT-3.5-turbo");
}

TEST(HttpLlmTest, LoopbackCostMeterMatchesInProcessModel) {
  auto backing = MakeBacking();
  FakeLlmServer server(backing.get());
  ASSERT_TRUE(server.Start().ok());
  HttpLlm http(server.ClientOptions());

  auto reference = MakeBacking();
  std::vector<Prompt> batch = AttributePrompts({"Italy", "Japan", "Kenya"});
  ASSERT_TRUE(http.Complete(AttributePrompt()).ok());
  ASSERT_TRUE(http.CompleteBatch(batch).ok());
  ASSERT_TRUE(reference->Complete(AttributePrompt()).ok());
  ASSERT_TRUE(reference->CompleteBatch(batch).ok());

  CostMeter via_http = http.cost();
  CostMeter in_process = reference->cost();
  EXPECT_EQ(via_http.num_prompts, in_process.num_prompts);
  EXPECT_EQ(via_http.prompt_tokens, in_process.prompt_tokens);
  EXPECT_EQ(via_http.completion_tokens, in_process.completion_tokens);
  EXPECT_EQ(via_http.num_batches, in_process.num_batches);
  EXPECT_DOUBLE_EQ(via_http.simulated_latency_ms,
                   in_process.simulated_latency_ms);
  ASSERT_EQ(via_http.by_model.size(), 1u);
  EXPECT_EQ(via_http.by_model.begin()->first, "GPT-3.5-turbo");
}

TEST(HttpLlmTest, OutOfOrderBatchRepliesReassembleByIndex) {
  auto backing = MakeBacking();
  FakeLlmServer::Options options;
  options.shuffle_batch_replies = true;
  FakeLlmServer server(backing.get(), options);
  ASSERT_TRUE(server.Start().ok());
  HttpLlm http(server.ClientOptions());

  std::vector<Prompt> batch =
      AttributePrompts({"Italy", "Japan", "Kenya", "Peru"});
  auto shuffled = http.CompleteBatch(batch);
  ASSERT_TRUE(shuffled.ok()) << shuffled.status();

  auto direct = MakeBacking()->CompleteBatch(batch);
  ASSERT_TRUE(direct.ok());
  ASSERT_EQ(shuffled.value().size(), direct.value().size());
  for (size_t i = 0; i < direct.value().size(); ++i) {
    EXPECT_EQ(shuffled.value()[i].text, direct.value()[i].text) << i;
  }
}

// --- fault classification --------------------------------------------------

TEST(HttpLlmTest, MalformedJsonIsLlmErrorAndNotRetryable) {
  auto backing = MakeBacking();
  FakeLlmServer server(backing.get());
  ASSERT_TRUE(server.Start().ok());
  HttpLlm http(server.ClientOptions());

  server.PushFault({FakeLlmServer::FaultKind::kMalformedJson, -1, 0});
  auto single = http.Complete(AttributePrompt());
  ASSERT_FALSE(single.ok());
  EXPECT_EQ(single.status().code(), StatusCode::kLlmError);
  EXPECT_FALSE(IsRetryableLlmError(single.status()));

  // Same contract for a batch: kLlmError, no partial completions.
  server.PushFault({FakeLlmServer::FaultKind::kMalformedJson, -1, 0});
  auto batch = http.CompleteBatch(AttributePrompts({"Italy", "Japan"}));
  ASSERT_FALSE(batch.ok());
  EXPECT_EQ(batch.status().code(), StatusCode::kLlmError);
  EXPECT_FALSE(IsRetryableLlmError(batch.status()));
}

TEST(HttpLlmTest, TransportFaultsAreRetryable) {
  auto backing = MakeBacking();
  FakeLlmServer server(backing.get());
  ASSERT_TRUE(server.Start().ok());
  HttpLlm http(server.ClientOptions());

  server.PushFault({FakeLlmServer::FaultKind::k500, -1, 0});
  auto after_500 = http.Complete(AttributePrompt());
  ASSERT_FALSE(after_500.ok());
  EXPECT_TRUE(IsRetryableLlmError(after_500.status()));

  server.PushFault({FakeLlmServer::FaultKind::kTruncatedBody, -1, 0});
  auto truncated = http.Complete(AttributePrompt());
  ASSERT_FALSE(truncated.ok());
  EXPECT_TRUE(IsRetryableLlmError(truncated.status()));

  server.PushFault({FakeLlmServer::FaultKind::kCloseEarly, -1, 0});
  auto dropped = http.Complete(AttributePrompt());
  ASSERT_FALSE(dropped.ok());
  EXPECT_TRUE(IsRetryableLlmError(dropped.status()));
}

TEST(HttpLlmTest, Http429CarriesRetryAfter) {
  auto backing = MakeBacking();
  FakeLlmServer server(backing.get());
  ASSERT_TRUE(server.Start().ok());
  HttpLlm http(server.ClientOptions());

  server.PushFault({FakeLlmServer::FaultKind::k429, 1234, 0});
  auto limited = http.Complete(AttributePrompt());
  ASSERT_FALSE(limited.ok());
  EXPECT_EQ(limited.status().code(), StatusCode::kLlmError);
  EXPECT_TRUE(IsRetryableLlmError(limited.status()));
  EXPECT_EQ(RetryAfterMs(limited.status()), 1234);
}

TEST(HttpLlmTest, StallTripsClientTimeoutAsRetryable) {
  auto backing = MakeBacking();
  FakeLlmServer server(backing.get());
  ASSERT_TRUE(server.Start().ok());
  HttpLlmOptions client = server.ClientOptions();
  client.io_timeout_ms = 100;
  HttpLlm http(client);

  server.PushFault({FakeLlmServer::FaultKind::kStall, -1, 400});
  auto stalled = http.Complete(AttributePrompt());
  ASSERT_FALSE(stalled.ok());
  EXPECT_TRUE(IsRetryableLlmError(stalled.status()));
}

// --- resilience policy -----------------------------------------------------

TEST(ResilientLlmTest, RetriesThroughA429BurstAndHonoursRetryAfter) {
  auto backing = MakeBacking();
  FakeLlmServer server(backing.get());
  ASSERT_TRUE(server.Start().ok());
  HttpLlm http(server.ClientOptions());

  ResilienceOptions options;
  options.max_retries = 3;
  options.initial_backoff_ms = 5;
  options.jitter = 0.0;
  FakeClock clock;
  clock.Install(&options);
  ResilientLlm resilient(&http, options);

  server.PushFaults({FakeLlmServer::FaultKind::k429, 70, 0}, 2);
  auto result = resilient.Complete(AttributePrompt());
  ASSERT_TRUE(result.ok()) << result.status();

  ResilienceStats stats = resilient.stats();
  EXPECT_EQ(stats.round_trips, 3);
  EXPECT_EQ(stats.retries, 2);
  EXPECT_EQ(stats.retry_after_honoured, 2);
  ASSERT_EQ(clock.sleeps.size(), 2u);
  // The server asked for 70 ms; the policy must wait at least that,
  // not its own (smaller) backoff.
  EXPECT_GE(clock.sleeps[0], 70);
  EXPECT_GE(clock.sleeps[1], 70);
  EXPECT_EQ(server.requests_seen(), 3);
}

TEST(ResilientLlmTest, ExponentialBackoffIsCapped) {
  auto backing = MakeBacking();
  FakeLlmServer server(backing.get());
  ASSERT_TRUE(server.Start().ok());
  HttpLlm http(server.ClientOptions());

  ResilienceOptions options;
  options.max_retries = 3;
  options.initial_backoff_ms = 10;
  options.backoff_multiplier = 4.0;
  options.max_backoff_ms = 25;
  options.jitter = 0.0;
  FakeClock clock;
  clock.Install(&options);
  ResilientLlm resilient(&http, options);

  server.PushFaults({FakeLlmServer::FaultKind::k500, -1, 0}, 3);
  auto result = resilient.Complete(AttributePrompt());
  ASSERT_TRUE(result.ok()) << result.status();
  // 10, then 40 capped to 25, then 160 capped to 25.
  ASSERT_EQ(clock.sleeps.size(), 3u);
  EXPECT_EQ(clock.sleeps[0], 10);
  EXPECT_EQ(clock.sleeps[1], 25);
  EXPECT_EQ(clock.sleeps[2], 25);
}

TEST(ResilientLlmTest, GivesUpAfterMaxRetriesWithAnnotatedError) {
  auto backing = MakeBacking();
  FakeLlmServer server(backing.get());
  ASSERT_TRUE(server.Start().ok());
  HttpLlm http(server.ClientOptions());

  ResilienceOptions options;
  options.max_retries = 2;
  options.initial_backoff_ms = 1;
  FakeClock clock;
  clock.Install(&options);
  ResilientLlm resilient(&http, options);

  server.PushFaults({FakeLlmServer::FaultKind::k500, -1, 0}, 10);
  auto result = resilient.Complete(AttributePrompt());
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kLlmError);
  EXPECT_NE(result.status().message().find("giving up after 3 round trips"),
            std::string::npos)
      << result.status();
  EXPECT_EQ(server.requests_seen(), 3);
  EXPECT_EQ(server.pending_faults(), 7u);
}

TEST(ResilientLlmTest, MalformedJsonIsNotRetried) {
  auto backing = MakeBacking();
  FakeLlmServer server(backing.get());
  ASSERT_TRUE(server.Start().ok());
  HttpLlm http(server.ClientOptions());

  ResilienceOptions options;
  options.max_retries = 5;
  FakeClock clock;
  clock.Install(&options);
  ResilientLlm resilient(&http, options);

  server.PushFault({FakeLlmServer::FaultKind::kMalformedJson, -1, 0});
  auto result = resilient.Complete(AttributePrompt());
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kLlmError);
  EXPECT_EQ(resilient.stats().round_trips, 1);
  EXPECT_EQ(server.requests_seen(), 1);
  EXPECT_TRUE(clock.sleeps.empty());
}

TEST(ResilientLlmTest, DeadlineFiresInsteadOfSleepingPastIt) {
  auto backing = MakeBacking();
  FakeLlmServer server(backing.get());
  ASSERT_TRUE(server.Start().ok());
  HttpLlm http(server.ClientOptions());

  ResilienceOptions options;
  options.max_retries = 5;
  options.request_deadline_ms = 100;
  options.max_backoff_ms = 10000;
  options.jitter = 0.0;
  FakeClock clock;
  clock.Install(&options);
  ResilientLlm resilient(&http, options);

  // The server demands a 5-second pause; the 100 ms deadline must win.
  server.PushFault({FakeLlmServer::FaultKind::k429, 5000, 0});
  auto result = resilient.Complete(AttributePrompt());
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kLlmError);
  EXPECT_NE(result.status().message().find("deadline"), std::string::npos)
      << result.status();
  EXPECT_EQ(resilient.stats().deadline_exceeded, 1);
  EXPECT_TRUE(clock.sleeps.empty());  // never slept into the deadline
}

// --- circuit breaker (in-memory inner model: no transport noise) -----------

/// Inner model that fails the next `failures` round trips with a
/// retryable error, then answers from the wrapped model.
class FlakyModel : public LanguageModel {
 public:
  FlakyModel(LanguageModel* inner, int failures)
      : inner_(inner), failures_remaining_(failures) {}

  const std::string& name() const override { return inner_->name(); }

  Result<Completion> Complete(const Prompt& prompt) override {
    if (TakeFailure()) {
      return MarkRetryable(Status::LlmError("flaky: injected failure"));
    }
    return inner_->Complete(prompt);
  }

  Result<std::vector<Completion>> CompleteBatch(
      const std::vector<Prompt>& prompts) override {
    if (TakeFailure()) {
      return MarkRetryable(Status::LlmError("flaky: injected failure"));
    }
    return inner_->CompleteBatch(prompts);
  }

  CostMeter cost() const override { return inner_->cost(); }
  void ResetCost() override { inner_->ResetCost(); }

  void FailNext(int failures) { failures_remaining_.store(failures); }
  int64_t calls() const { return calls_.load(); }

 private:
  bool TakeFailure() {
    calls_.fetch_add(1);
    int remaining = failures_remaining_.load();
    while (remaining > 0) {
      if (failures_remaining_.compare_exchange_weak(remaining,
                                                    remaining - 1)) {
        return true;
      }
    }
    return false;
  }

  LanguageModel* inner_;
  std::atomic<int> failures_remaining_;
  std::atomic<int64_t> calls_{0};
};

TEST(ResilientLlmTest, CircuitOpensHalfOpensAndRecloses) {
  auto backing = MakeBacking();
  FlakyModel flaky(backing.get(), 3);

  ResilienceOptions options;
  options.max_retries = 0;  // one round trip per call: failures count 1:1
  options.circuit_failure_threshold = 3;
  options.circuit_cooldown_ms = 1000;
  FakeClock clock;
  clock.Install(&options);
  ResilientLlm resilient(&flaky, options);

  // Three consecutive failures trip the breaker...
  for (int i = 0; i < 3; ++i) {
    EXPECT_FALSE(resilient.Complete(AttributePrompt()).ok());
  }
  EXPECT_EQ(resilient.circuit_state(), CircuitState::kOpen);
  EXPECT_EQ(resilient.stats().circuit_opens, 1);

  // ...and while open, calls fail fast without touching the backend.
  int64_t calls_before = flaky.calls();
  auto rejected = resilient.Complete(AttributePrompt());
  ASSERT_FALSE(rejected.ok());
  EXPECT_NE(rejected.status().message().find("circuit open"),
            std::string::npos);
  EXPECT_EQ(flaky.calls(), calls_before);
  EXPECT_EQ(resilient.stats().circuit_rejections, 1);

  // After the cooldown one probe goes through; it succeeds and recloses.
  clock.now_ms.fetch_add(1001);
  auto probe = resilient.Complete(AttributePrompt());
  ASSERT_TRUE(probe.ok()) << probe.status();
  EXPECT_EQ(resilient.circuit_state(), CircuitState::kClosed);

  // Healthy again: subsequent calls flow normally.
  EXPECT_TRUE(resilient.Complete(AttributePrompt()).ok());
}

TEST(ResilientLlmTest, FailedProbeReopensTheCircuit) {
  auto backing = MakeBacking();
  FlakyModel flaky(backing.get(), 3);

  ResilienceOptions options;
  options.max_retries = 0;
  options.circuit_failure_threshold = 3;
  options.circuit_cooldown_ms = 500;
  FakeClock clock;
  clock.Install(&options);
  ResilientLlm resilient(&flaky, options);

  for (int i = 0; i < 3; ++i) {
    EXPECT_FALSE(resilient.Complete(AttributePrompt()).ok());
  }
  EXPECT_EQ(resilient.circuit_state(), CircuitState::kOpen);

  // Probe after cooldown fails -> straight back to open, one more open
  // transition counted.
  flaky.FailNext(1);
  clock.now_ms.fetch_add(501);
  EXPECT_FALSE(resilient.Complete(AttributePrompt()).ok());
  EXPECT_EQ(resilient.circuit_state(), CircuitState::kOpen);
  EXPECT_EQ(resilient.stats().circuit_opens, 2);
}

TEST(ResilientLlmTest, RateLimiterSpacesRoundTrips) {
  auto backing = MakeBacking();

  ResilienceOptions options;
  options.rate_limit_per_sec = 10.0;  // one token per 100 ms
  options.rate_limit_burst = 1.0;
  FakeClock clock;
  clock.Install(&options);
  ResilientLlm resilient(backing.get(), options);

  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(resilient.Complete(AttributePrompt()).ok());
  }
  // First call rides the initial token; each later call waits ~100 ms of
  // fake time for a refill.
  EXPECT_EQ(resilient.stats().rate_limit_waits, 3);
  EXPECT_GE(clock.now_ms.load(), 300);
}

}  // namespace
}  // namespace galois::llm
