// End-to-end tests of the experiment harness: the Table 1 / Table 2 shape
// assertions the paper's evaluation rests on.

#include <gtest/gtest.h>

#include "eval/harness.h"
#include "eval/report.h"
#include "knowledge/workload.h"
#include "llm/model_profile.h"

namespace galois::eval {
namespace {

const knowledge::SpiderLikeWorkload& W() {
  static const auto* w = []() {
    auto r = knowledge::SpiderLikeWorkload::Create();
    EXPECT_TRUE(r.ok());
    return new knowledge::SpiderLikeWorkload(std::move(r).value());
  }();
  return *w;
}

/// Cache: running the full harness once per model is enough for all
/// assertions below.
const std::vector<QueryOutcome>& ChatGptOutcomes() {
  static const auto* outcomes = []() {
    ExperimentConfig config;
    config.run_galois = true;
    config.run_nl_qa = true;
    config.run_cot_qa = true;
    auto r = RunExperiment(W(), llm::ModelProfile::ChatGpt(), config);
    EXPECT_TRUE(r.ok()) << r.status();
    return new std::vector<QueryOutcome>(std::move(r).value());
  }();
  return *outcomes;
}

TEST(HarnessTest, OutcomesCoverAllQueries) {
  EXPECT_EQ(ChatGptOutcomes().size(), 46u);
  for (const QueryOutcome& o : ChatGptOutcomes()) {
    EXPECT_GT(o.rd_rows, 0u);
    ASSERT_TRUE(o.rm_rows.has_value());
    ASSERT_TRUE(o.galois_match.has_value());
    ASSERT_TRUE(o.nl_match.has_value());
    ASSERT_TRUE(o.cot_match.has_value());
    EXPECT_GT(o.galois_cost.num_prompts, 0);
  }
}

TEST(HarnessTest, Table1ShapeAcrossModels) {
  ExperimentConfig config;
  config.run_galois = true;
  double flan = AverageCardinalityDiff(
      RunExperiment(W(), llm::ModelProfile::Flan(), config).value());
  double gpt3 = AverageCardinalityDiff(
      RunExperiment(W(), llm::ModelProfile::Gpt3(), config).value());
  double chatgpt = AverageCardinalityDiff(ChatGptOutcomes());
  // Small model misses a large share of the rows (paper: -47.4).
  EXPECT_LT(flan, -35.0);
  // GPT-3 is nearly exact and slightly positive (paper: +1.0).
  EXPECT_GT(gpt3, -3.0);
  EXPECT_LT(gpt3, 6.0);
  // ChatGPT sits in between (paper: -19.5).
  EXPECT_LT(chatgpt, -10.0);
  EXPECT_GT(chatgpt, -35.0);
  // Ordering: |flan| > |chatgpt| > |gpt3|.
  EXPECT_LT(flan, chatgpt);
  EXPECT_LT(chatgpt, gpt3);
}

TEST(HarnessTest, Table2GaloisBeatsBaselinesOverall) {
  const auto& o = ChatGptOutcomes();
  double galois = Table2Average(o, Method::kGalois, std::nullopt);
  double nl = Table2Average(o, Method::kNlQa, std::nullopt);
  double cot = Table2Average(o, Method::kCotQa, std::nullopt);
  // Paper: 50 > 44 > 41.
  EXPECT_GT(galois, nl);
  EXPECT_GE(nl, cot);
}

TEST(HarnessTest, Table2SelectionsAreEasiest) {
  const auto& o = ChatGptOutcomes();
  using knowledge::QueryClass;
  double sel = Table2Average(o, Method::kGalois, QueryClass::kSelection);
  double agg = Table2Average(o, Method::kGalois, QueryClass::kAggregate);
  double join = Table2Average(o, Method::kGalois, QueryClass::kJoin);
  // Paper: 80 / 29 / 0.
  EXPECT_GT(sel, 70.0);
  EXPECT_LT(agg, sel);
  EXPECT_LT(join, 10.0);
  EXPECT_LT(join, agg);
}

TEST(HarnessTest, Table2JoinInversion) {
  // The paper's most interesting inversion: one-shot QA does *better* than
  // Galois on joins (8 vs 0) because Galois' strict equality join breaks
  // on surface-form mismatches.
  const auto& o = ChatGptOutcomes();
  using knowledge::QueryClass;
  double galois_join =
      Table2Average(o, Method::kGalois, QueryClass::kJoin);
  double nl_join = Table2Average(o, Method::kNlQa, QueryClass::kJoin);
  EXPECT_GT(nl_join, galois_join);
}

TEST(HarnessTest, Table2CotWorseOnAggregates) {
  const auto& o = ChatGptOutcomes();
  using knowledge::QueryClass;
  double nl_agg = Table2Average(o, Method::kNlQa, QueryClass::kAggregate);
  double cot_agg =
      Table2Average(o, Method::kCotQa, QueryClass::kAggregate);
  // Paper: 20 vs 13 — "well-engineered chain-of-thought NL prompts do not
  // lead to better results than Galois".
  EXPECT_GT(nl_agg, cot_agg);
}

TEST(HarnessTest, PromptCountsInPaperBallpark) {
  ExperimentConfig config;
  config.run_galois = true;
  auto outcomes =
      RunExperiment(W(), llm::ModelProfile::Gpt3(), config).value();
  double total = 0;
  for (const auto& o : outcomes) {
    total += static_cast<double>(o.galois_cost.num_prompts);
  }
  double avg = total / static_cast<double>(outcomes.size());
  // Paper reports ~110 batched prompts per query.
  EXPECT_GT(avg, 40.0);
  EXPECT_LT(avg, 300.0);
}

TEST(HarnessTest, AverageCardinalitySkipsEmptyGroundTruth) {
  std::vector<QueryOutcome> outcomes(2);
  outcomes[0].rd_rows = 0;  // skipped
  outcomes[0].cardinality_diff_percent = -100.0;
  outcomes[1].rd_rows = 10;
  outcomes[1].cardinality_diff_percent = -20.0;
  EXPECT_DOUBLE_EQ(AverageCardinalityDiff(outcomes), -20.0);
}

TEST(HarnessTest, Table2AverageFiltersByClass) {
  std::vector<QueryOutcome> outcomes(2);
  outcomes[0].query_class = knowledge::QueryClass::kSelection;
  outcomes[0].galois_match = CellMatchResult{8, 10};
  outcomes[1].query_class = knowledge::QueryClass::kJoin;
  outcomes[1].galois_match = CellMatchResult{0, 10};
  EXPECT_DOUBLE_EQ(Table2Average(outcomes, Method::kGalois,
                                 knowledge::QueryClass::kSelection),
                   80.0);
  EXPECT_DOUBLE_EQ(Table2Average(outcomes, Method::kGalois, std::nullopt),
                   40.0);
  // Missing data -> 0 contribution, empty class -> 0.
  EXPECT_DOUBLE_EQ(Table2Average(outcomes, Method::kNlQa, std::nullopt),
                   0.0);
}

TEST(ReportTest, Table1Formatting) {
  std::vector<QueryOutcome> outcomes(1);
  outcomes[0].rd_rows = 10;
  outcomes[0].cardinality_diff_percent = -19.5;
  std::vector<std::pair<std::string, std::vector<QueryOutcome>>> per_model{
      {"GPT-3.5-turbo", outcomes}};
  std::string table = FormatTable1(per_model);
  EXPECT_NE(table.find("GPT-3.5-turbo"), std::string::npos);
  EXPECT_NE(table.find("-19.5"), std::string::npos);
}

TEST(ReportTest, Table2Formatting) {
  std::string table = FormatTable2(ChatGptOutcomes());
  EXPECT_NE(table.find("R_M"), std::string::npos);
  EXPECT_NE(table.find("T_M"), std::string::npos);
  EXPECT_NE(table.find("Selections"), std::string::npos);
}

TEST(ReportTest, CostStatsFormatting) {
  std::string stats = FormatCostStats(ChatGptOutcomes());
  EXPECT_NE(stats.find("prompts/query"), std::string::npos);
  EXPECT_NE(stats.find("p95"), std::string::npos);
  // Without a materialisation cache there is no table-reuse line.
  EXPECT_EQ(stats.find("Materialisation cache"), std::string::npos);
  EXPECT_EQ(FormatCostStats({}), "No cost data collected\n");
}

TEST(HarnessTest, MaterialisationCacheHitsSurfaceInEvalOutput) {
  // The workload queries the same handful of tables over and over, so a
  // shared cross-query cache scores table-level hits within one
  // experiment run — and those hits show up in the cost report.
  ExperimentConfig config;
  config.use_materialisation_cache = true;
  auto outcomes = RunExperiment(W(), llm::ModelProfile::ChatGpt(), config);
  ASSERT_TRUE(outcomes.ok()) << outcomes.status();

  int64_t lookups = 0;
  int64_t hits = 0;
  size_t free_queries = 0;
  for (const QueryOutcome& o : *outcomes) {
    lookups += o.table_cache_lookups;
    hits += o.table_cache_hits;
    // A query whose tables all hit performs zero LLM round trips.
    if (o.table_cache_lookups > 0 &&
        o.table_cache_hits == o.table_cache_lookups) {
      EXPECT_EQ(o.galois_cost.num_prompts, 0) << "q" << o.query_id;
      ++free_queries;
    }
  }
  EXPECT_GT(lookups, 0);
  EXPECT_GT(hits, 0);
  EXPECT_GT(free_queries, 0u);

  std::string stats = FormatCostStats(*outcomes);
  EXPECT_NE(stats.find("Materialisation cache:"), std::string::npos)
      << stats;
  EXPECT_NE(stats.find("table hits"), std::string::npos) << stats;

  // Same workload without the cache: identical relational results are
  // already covered elsewhere; here we check the cached run really
  // saved prompts overall.
  int64_t cached_prompts = 0;
  for (const QueryOutcome& o : *outcomes) {
    cached_prompts += o.galois_cost.num_prompts;
  }
  int64_t uncached_prompts = 0;
  for (const QueryOutcome& o : ChatGptOutcomes()) {
    uncached_prompts += o.galois_cost.num_prompts;
  }
  EXPECT_LT(cached_prompts, uncached_prompts);
}

}  // namespace
}  // namespace galois::eval
