// Plan-driven execution equivalence: the physical operator DAG compiled
// from planner::BuildLogicalPlan must reproduce the PR-5 hardwired
// executor ladder byte for byte — relations, CostMeter and provenance
// trace — across the full 46-query workload.
//
// The sequential arm is checked against a recorded golden
// (tests/golden/plan_equivalence.golden, produced by the ladder before
// the refactor; regenerate with GALOIS_REGEN_PLAN_GOLDEN=1). The
// pipelined arm is checked in-process against the sequential arm, full
// equality included (latency with FP-reassociation tolerance only).
// Runs under the TSan CI job: the pipelined arm hammers the phase pool
// through the compiled operator DAG.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "core/galois_executor.h"
#include "knowledge/workload.h"
#include "llm/simulated_llm.h"

#ifndef GALOIS_SOURCE_DIR
#define GALOIS_SOURCE_DIR "."
#endif

namespace galois::core {
namespace {

const knowledge::SpiderLikeWorkload& W() {
  static const auto* w = []() {
    auto r = knowledge::SpiderLikeWorkload::Create();
    EXPECT_TRUE(r.ok());
    return new knowledge::SpiderLikeWorkload(std::move(r).value());
  }();
  return *w;
}

ExecutionOptions GoldenOptions(bool pipelined) {
  ExecutionOptions opts;
  opts.batch_prompts = true;
  opts.max_batch_size = 4;
  opts.parallel_batches = 4;
  opts.verify_cells = true;
  opts.record_provenance = true;
  opts.pipeline_phases = pipelined;
  return opts;
}

/// FNV-1a over the per-cell prompt/completion texts: binds the golden to
/// the exact prompts issued without storing megabytes of text.
uint64_t Fnv1a(uint64_t h, const std::string& s) {
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

/// Canonical text rendering of one query's QueryOutput. Everything the
/// equivalence bar covers is in here: schema, rows, exact cost counts,
/// latency (sequential accumulation order is deterministic), scan and
/// cell provenance including a hash of every prompt/completion pair.
std::string Canonicalise(const std::string& id, const std::string& sql,
                         const QueryOutput& out) {
  std::ostringstream os;
  os << "== " << id << " ==\n";
  os << "sql: " << sql << "\n";
  os << "schema:";
  for (const Column& c : out.relation.schema().columns()) {
    os << " " << c.QualifiedName();
  }
  os << "\n";
  for (const Tuple& row : out.relation.rows()) {
    os << "row:";
    for (const Value& v : row) {
      os << " [" << (v.is_null() ? "NULL" : v.ToString()) << "]";
    }
    os << "\n";
  }
  const llm::CostMeter& m = out.cost;
  char latency[64];
  std::snprintf(latency, sizeof(latency), "%.6f", m.simulated_latency_ms);
  os << "cost: prompts=" << m.num_prompts << " batches=" << m.num_batches
     << " cache_hits=" << m.cache_hits << " ptok=" << m.prompt_tokens
     << " ctok=" << m.completion_tokens << " latency_ms=" << latency
     << "\n";
  for (const ScanProvenance& s : out.trace.scans) {
    os << "scan: " << s.table_alias << " pages=" << s.pages
       << " keys=" << s.keys << " filtered=" << s.filtered << "\n";
  }
  uint64_t text_hash = 14695981039346656037ull;
  for (const CellProvenance& c : out.trace.cells) {
    os << "cell: " << c.table_alias << "." << c.column << "[" << c.key
       << "]=" << (c.value.is_null() ? "NULL" : c.value.ToString())
       << (c.verified ? " verified" : "") << (c.rejected ? " rejected" : "")
       << "\n";
    text_hash = Fnv1a(text_hash, c.prompt);
    text_hash = Fnv1a(text_hash, c.completion);
  }
  os << "prompt_hash: " << text_hash << "\n";
  return os.str();
}

std::string GoldenPath() {
  return std::string(GALOIS_SOURCE_DIR) +
         "/tests/golden/plan_equivalence.golden";
}

/// The sequential arm of every workload query, canonicalised.
std::string RenderWorkloadSequential() {
  std::ostringstream os;
  for (const knowledge::QuerySpec& q : W().queries()) {
    llm::SimulatedLlm model(&W().kb(), llm::ModelProfile::ChatGpt(),
                            &W().catalog(), 7);
    GaloisExecutor galois(&model, &W().catalog(), GoldenOptions(false));
    auto out = galois.RunSql(q.sql);
    if (!out.ok()) {
      os << "== q" << q.id << " ==\nsql: " << q.sql
         << "\nerror: " << out.status().ToString() << "\n";
      continue;
    }
    os << Canonicalise("q" + std::to_string(q.id), q.sql, *out);
  }
  return os.str();
}

TEST(PlanEquivalenceTest, SequentialWorkloadMatchesLadderGolden) {
  std::string rendered = RenderWorkloadSequential();
  if (std::getenv("GALOIS_REGEN_PLAN_GOLDEN") != nullptr) {
    std::ofstream f(GoldenPath());
    ASSERT_TRUE(f.good()) << "cannot write " << GoldenPath();
    f << rendered;
    GTEST_SKIP() << "golden regenerated at " << GoldenPath();
  }
  std::ifstream f(GoldenPath());
  ASSERT_TRUE(f.good())
      << "missing golden " << GoldenPath()
      << " (regenerate with GALOIS_REGEN_PLAN_GOLDEN=1)";
  std::ostringstream golden;
  golden << f.rdbuf();
  // Compare block by block so a mismatch names the query.
  std::istringstream got(rendered), want(golden.str());
  std::string got_line, want_line;
  std::string current_query;
  size_t line_no = 0;
  while (true) {
    bool more_got = static_cast<bool>(std::getline(got, got_line));
    bool more_want = static_cast<bool>(std::getline(want, want_line));
    if (!more_got && !more_want) break;
    ++line_no;
    if (more_want && want_line.rfind("== ", 0) == 0) {
      current_query = want_line;
    }
    ASSERT_EQ(more_got, more_want)
        << "golden length mismatch near line " << line_no << " ("
        << current_query << ")";
    ASSERT_EQ(got_line, want_line)
        << "golden mismatch at line " << line_no << " (" << current_query
        << ")";
  }
}

TEST(PlanEquivalenceTest, PipelinedWorkloadMatchesSequential) {
  for (const knowledge::QuerySpec& q : W().queries()) {
    const std::string qid = "q" + std::to_string(q.id);
    SCOPED_TRACE(qid + ": " + q.sql);
    llm::SimulatedLlm seq_model(&W().kb(), llm::ModelProfile::ChatGpt(),
                                &W().catalog(), 7);
    GaloisExecutor sequential(&seq_model, &W().catalog(),
                              GoldenOptions(false));
    auto rm_seq = sequential.RunSql(q.sql);
    ASSERT_TRUE(rm_seq.ok()) << rm_seq.status().ToString();

    llm::SimulatedLlm pipe_model(&W().kb(), llm::ModelProfile::ChatGpt(),
                                 &W().catalog(), 7);
    GaloisExecutor pipelined(&pipe_model, &W().catalog(),
                             GoldenOptions(true));
    auto rm_pipe = pipelined.RunSql(q.sql);
    ASSERT_TRUE(rm_pipe.ok()) << rm_pipe.status().ToString();

    EXPECT_TRUE(rm_seq->relation.SameContents(rm_pipe->relation));
    const llm::CostMeter& seq = rm_seq->cost;
    const llm::CostMeter& pipe = rm_pipe->cost;
    EXPECT_EQ(seq.num_prompts, pipe.num_prompts);
    EXPECT_EQ(seq.num_batches, pipe.num_batches);
    EXPECT_EQ(seq.cache_hits, pipe.cache_hits);
    EXPECT_EQ(seq.prompt_tokens, pipe.prompt_tokens);
    EXPECT_EQ(seq.completion_tokens, pipe.completion_tokens);
    EXPECT_NEAR(seq.simulated_latency_ms, pipe.simulated_latency_ms,
                1e-6 * (1.0 + seq.simulated_latency_ms));
    // Full trace equality via the canonical rendering (ordering
    // included; latency excluded by construction — it is not a trace
    // field).
    EXPECT_EQ(Canonicalise(qid, q.sql, *rm_seq),
              Canonicalise(qid, q.sql, *rm_pipe));
  }
}

}  // namespace
}  // namespace galois::core
