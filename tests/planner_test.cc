// Tests for the logical planner: plan construction, retrieve-node
// injection, optimizer rewrites, prompt estimation, explain output.

#include <gtest/gtest.h>

#include "knowledge/workload.h"
#include "planner/planner.h"
#include "sql/parser.h"

namespace galois::planner {
namespace {

const catalog::Catalog& Catalog() {
  static const auto* w = []() {
    auto r = knowledge::SpiderLikeWorkload::Create();
    EXPECT_TRUE(r.ok());
    return new knowledge::SpiderLikeWorkload(std::move(r).value());
  }();
  return (*w).catalog();
}

PlanNodePtr Plan(const std::string& sql) {
  auto stmt = sql::ParseSelect(sql);
  EXPECT_TRUE(stmt.ok()) << stmt.status();
  auto plan = BuildLogicalPlan(stmt.value(), Catalog());
  EXPECT_TRUE(plan.ok()) << plan.status();
  return std::move(plan).value();
}

const PlanNode* FindOp(const PlanNode& root, PlanOp op) {
  if (root.op == op) return &root;
  for (const auto& c : root.children) {
    if (const PlanNode* found = FindOp(*c, op)) return found;
  }
  return nullptr;
}

int CountOp(const PlanNode& root, PlanOp op) {
  int n = root.op == op ? 1 : 0;
  for (const auto& c : root.children) n += CountOp(*c, op);
  return n;
}

TEST(PlannerTest, SimpleSelectPlanShape) {
  PlanNodePtr plan =
      Plan("SELECT name FROM country WHERE continent = 'Europe'");
  // Project at the root, filter below, scan at the leaf.
  EXPECT_EQ(plan->op, PlanOp::kProject);
  ASSERT_NE(FindOp(*plan, PlanOp::kFilter), nullptr);
  const PlanNode* scan = FindOp(*plan, PlanOp::kScan);
  ASSERT_NE(scan, nullptr);
  EXPECT_TRUE(scan->from_llm);
  EXPECT_EQ(scan->key_column, "name");
}

TEST(PlannerTest, RetrieveNodeInjectedForNonKeyColumns) {
  PlanNodePtr plan =
      Plan("SELECT name, capital FROM country WHERE continent = 'Asia'");
  const PlanNode* retrieve = FindOp(*plan, PlanOp::kRetrieve);
  ASSERT_NE(retrieve, nullptr);
  // capital (projected) and continent (filtered) need retrieval; the key
  // (name) does not.
  std::set<std::string> cols(retrieve->columns.begin(),
                             retrieve->columns.end());
  EXPECT_TRUE(cols.count("capital"));
  EXPECT_TRUE(cols.count("continent"));
  EXPECT_FALSE(cols.count("name"));
}

TEST(PlannerTest, KeyOnlyQueryHasNoRetrieveNode) {
  PlanNodePtr plan = Plan("SELECT name FROM country");
  EXPECT_EQ(FindOp(*plan, PlanOp::kRetrieve), nullptr);
}

TEST(PlannerTest, DbScanHasNoRetrieve) {
  PlanNodePtr plan =
      Plan("SELECT name, salary FROM DB.Employees WHERE salary > 0");
  const PlanNode* scan = FindOp(*plan, PlanOp::kScan);
  ASSERT_NE(scan, nullptr);
  EXPECT_FALSE(scan->from_llm);
  EXPECT_EQ(FindOp(*plan, PlanOp::kRetrieve), nullptr);
}

TEST(PlannerTest, JoinPlanIsLeftDeep) {
  PlanNodePtr plan = Plan(
      "SELECT a.code, co.name FROM airport a, city ci, country co "
      "WHERE a.city = ci.name AND ci.country = co.name");
  EXPECT_EQ(CountOp(*plan, PlanOp::kJoin), 2);
  EXPECT_EQ(CountOp(*plan, PlanOp::kScan), 3);
}

TEST(PlannerTest, AggregateAndHavingNodes) {
  PlanNodePtr plan = Plan(
      "SELECT continent, COUNT(*) FROM country GROUP BY continent "
      "HAVING COUNT(*) > 3 ORDER BY continent LIMIT 2");
  EXPECT_NE(FindOp(*plan, PlanOp::kAggregate), nullptr);
  EXPECT_NE(FindOp(*plan, PlanOp::kSort), nullptr);
  const PlanNode* limit = FindOp(*plan, PlanOp::kLimit);
  ASSERT_NE(limit, nullptr);
  EXPECT_EQ(limit->limit, 2);
  // HAVING shows up as a filter above the aggregate.
  EXPECT_EQ(CountOp(*plan, PlanOp::kFilter), 1);
}

TEST(PlannerTest, DistinctNode) {
  PlanNodePtr plan = Plan("SELECT DISTINCT continent FROM country");
  EXPECT_NE(FindOp(*plan, PlanOp::kDistinct), nullptr);
}

TEST(PlannerTest, OptimizeLlmFiltersMarksSimplePredicates) {
  PlanNodePtr plan =
      Plan("SELECT name FROM country WHERE continent = 'Europe'");
  int rewritten = OptimizeLlmFilters(plan.get(),
                                     /*merge_into_scan=*/false);
  EXPECT_EQ(rewritten, 1);
  const PlanNode* filter = FindOp(*plan, PlanOp::kFilter);
  ASSERT_NE(filter, nullptr);
  EXPECT_TRUE(filter->via_llm);
  EXPECT_FALSE(filter->pushed_into_scan);
}

TEST(PlannerTest, MergeIntoScanSetsScanPredicate) {
  PlanNodePtr plan =
      Plan("SELECT name FROM city WHERE population > 1000000");
  OptimizeLlmFilters(plan.get(), /*merge_into_scan=*/true);
  const PlanNode* scan = FindOp(*plan, PlanOp::kScan);
  ASSERT_NE(scan, nullptr);
  ASSERT_NE(scan->predicate, nullptr);
  const PlanNode* filter = FindOp(*plan, PlanOp::kFilter);
  EXPECT_TRUE(filter->pushed_into_scan);
}

TEST(PlannerTest, JoinPredicateNotRewritten) {
  PlanNodePtr plan = Plan(
      "SELECT ci.name FROM city ci, country co "
      "WHERE ci.country = co.name");
  int rewritten = OptimizeLlmFilters(plan.get(), false);
  EXPECT_EQ(rewritten, 0);
}

TEST(PlannerTest, DbFilterNotRewritten) {
  PlanNodePtr plan =
      Plan("SELECT name FROM DB.Employees WHERE salary > 1000");
  EXPECT_EQ(OptimizeLlmFilters(plan.get(), false), 0);
}

TEST(PlannerTest, PruneRetrievedColumns) {
  // Build a plan, then artificially add an unused retrieved column.
  PlanNodePtr plan =
      Plan("SELECT name, capital FROM country WHERE continent = 'Asia'");
  PlanNode* retrieve = const_cast<PlanNode*>(
      FindOp(*plan, PlanOp::kRetrieve));
  ASSERT_NE(retrieve, nullptr);
  retrieve->columns.push_back("currency");  // nothing references it
  int pruned = PruneRetrievedColumns(plan.get());
  EXPECT_EQ(pruned, 1);
  for (const std::string& col : retrieve->columns) {
    EXPECT_NE(col, "currency");
  }
}

TEST(PlannerTest, ExplainRendersTree) {
  PlanNodePtr plan =
      Plan("SELECT name FROM country WHERE continent = 'Europe'");
  OptimizeLlmFilters(plan.get(), false);
  std::string text = Explain(*plan);
  EXPECT_NE(text.find("Project"), std::string::npos);
  EXPECT_NE(text.find("Scan[LLM] country"), std::string::npos);
  EXPECT_NE(text.find("one check prompt per key"), std::string::npos);
}

TEST(PlannerTest, PromptEstimateDropsWithPushdown) {
  PlanNodePtr plain =
      Plan("SELECT name FROM city WHERE population > 1000000");
  OptimizeLlmFilters(plain.get(), /*merge_into_scan=*/false);
  PlanNodePtr pushed =
      Plan("SELECT name FROM city WHERE population > 1000000");
  OptimizeLlmFilters(pushed.get(), /*merge_into_scan=*/true);
  int64_t cost_plain = EstimatePromptCount(*plain, 100, 15);
  int64_t cost_pushed = EstimatePromptCount(*pushed, 100, 15);
  EXPECT_GT(cost_plain, cost_pushed);
  EXPECT_GE(cost_plain - cost_pushed, 100);  // saved one prompt per key
}

TEST(PlannerTest, PromptEstimateCountsRetrieves) {
  PlanNodePtr plan = Plan("SELECT name, capital, currency FROM country");
  int64_t cost = EstimatePromptCount(*plan, 48, 12);
  // 4 scan pages + terminal + 2 attributes x 48 keys.
  EXPECT_GE(cost, 96);
}

TEST(PlannerTest, UnknownTableFailsPlanning) {
  auto stmt = sql::ParseSelect("SELECT x FROM ghost");
  ASSERT_TRUE(stmt.ok());
  EXPECT_FALSE(BuildLogicalPlan(stmt.value(), Catalog()).ok());
}

}  // namespace
}  // namespace galois::planner
