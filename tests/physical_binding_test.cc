// Tests for the physical-binding pass (planner::BindPhysicalAnnotations)
// and the plan-driven executor built on it:
//   - drift regression: a plan annotated with merge-into-scan renders
//     byte-for-byte the merged scan prompt the pre-plan executor ladder
//     produced (frozen literal below — do not regenerate);
//   - annotation semantics: conjunct consumption / residual folding,
//     the pushdown merge decision, retrieve reconciliation, and the
//     legality rules of the LIMIT paging bound;
//   - execution: a LIMIT-bounded key scan issues strictly fewer page
//     round trips than the unbounded scan of the same table.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/galois_executor.h"
#include "core/physical_plan.h"
#include "knowledge/workload.h"
#include "llm/language_model.h"
#include "llm/prompt_templates.h"
#include "llm/simulated_llm.h"
#include "planner/planner.h"
#include "sql/parser.h"

namespace galois {
namespace {

const knowledge::SpiderLikeWorkload& W() {
  static const auto* w = []() {
    auto r = knowledge::SpiderLikeWorkload::Create();
    EXPECT_TRUE(r.ok());
    return new knowledge::SpiderLikeWorkload(std::move(r).value());
  }();
  return *w;
}

llm::ModelProfile FullCoverage() {
  llm::ModelProfile p = llm::ModelProfile::ChatGpt();
  p.coverage_floor = 1.0;
  p.coverage_gain = 0.0;
  p.paging_fatigue = 0.0;
  p.hallucinated_key_rate = 0.0;
  p.unknown_rate = 0.0;
  p.fact_accuracy = 1.0;
  p.numeric_fact_accuracy = 1.0;
  p.value_format_noise = 0.0;
  p.reference_style_noise = 0.0;
  p.verbosity = 0.0;
  p.filter_check_error = 0.0;
  p.pushdown_error = 0.0;
  return p;
}

planner::PlanNodePtr Annotated(const std::string& sql,
                               const planner::BindingOptions& options) {
  auto stmt = sql::ParseSelect(sql);
  EXPECT_TRUE(stmt.ok()) << stmt.status();
  auto plan = planner::BuildLogicalPlan(stmt.value(), W().catalog());
  EXPECT_TRUE(plan.ok()) << plan.status();
  auto consumed = planner::BindPhysicalAnnotations(
      plan.value().get(), W().catalog(), options);
  EXPECT_TRUE(consumed.ok()) << consumed.status();
  return std::move(plan).value();
}

const planner::PlanNode* FindOp(const planner::PlanNode& root,
                                planner::PlanOp op) {
  if (root.op == op) return &root;
  for (const auto& c : root.children) {
    if (const planner::PlanNode* found = FindOp(*c, op)) return found;
  }
  return nullptr;
}

/// Transparent decorator recording every prompt text it forwards, so a
/// test can assert on the exact wire-level prompts a query issued.
class PromptRecorder : public llm::LanguageModel {
 public:
  explicit PromptRecorder(llm::LanguageModel* inner) : inner_(inner) {}

  const std::string& name() const override { return inner_->name(); }
  Result<llm::Completion> Complete(const llm::Prompt& prompt) override {
    prompts.push_back(prompt.text);
    return inner_->Complete(prompt);
  }
  Result<std::vector<llm::Completion>> CompleteBatch(
      const std::vector<llm::Prompt>& batch) override {
    for (const llm::Prompt& p : batch) prompts.push_back(p.text);
    return inner_->CompleteBatch(batch);
  }
  llm::CostMeter cost() const override { return inner_->cost(); }
  void ResetCost() override { inner_->ResetCost(); }

  std::vector<std::string> prompts;

 private:
  llm::LanguageModel* inner_;
};

// The page-0 scan prompt the pre-plan executor ladder issued for
//   SELECT name FROM city WHERE population > 1000000
// under PushdownPolicy::kAlways, captured verbatim before the ladder was
// retired. Frozen: if this test fails, the planner annotations (or the
// prompt template) drifted from the ladder's behaviour — fix the drift,
// do not re-capture.
const char kLadderMergedScanPrompt[] =
    "I am a highly intelligent question answering bot. If you ask me a "
    "question that is rooted in truth, I will give you the short answer. "
    "If you ask me a question that is nonsense, trickery, or has no "
    "clear answer, I will respond with \"Unknown\". If the answer is "
    "numerical, I will return the number only.\n"
    "Q: What is human life expectancy in the United States?\n"
    "A: 78.\n"
    "Q: Who was president of the United States in 1955?\n"
    "A: Dwight D. Eisenhower.\n"
    "Q: What is the capital of France?\n"
    "A: Paris.\n"
    "Q: What is a continent starting with letter O?\n"
    "A: Oceania.\n"
    "Q: Where were the 1992 Olympics held?\n"
    "A: Barcelona.\n"
    "Q: How many squigs are in a bonk?\n"
    "A: Unknown\n"
    "Q: List the names of all cities with population greater than "
    "1000000.\n"
    "A:";

TEST(MergedScanDriftTest, AnnotationsRenderTheLadderScanPrompt) {
  // Unit level: the ScanFilter annotation, routed through the same
  // PromptFilter conversion the plan compiler uses, renders the exact
  // prompt the ladder built.
  planner::BindingOptions binding;
  binding.merge_filter_into_scan = true;
  planner::PlanNodePtr plan = Annotated(
      "SELECT name FROM city WHERE population > 1000000", binding);
  const planner::PlanNode* scan = FindOp(*plan, planner::PlanOp::kScan);
  ASSERT_NE(scan, nullptr);
  ASSERT_EQ(scan->scan_filters.size(), 1u);
  EXPECT_TRUE(scan->merge_first_filter);

  const planner::ScanFilter& f = scan->scan_filters[0];
  llm::PromptFilter filter;
  filter.attribute = f.column;
  filter.attribute_description = f.column_description;
  filter.op = f.op;
  filter.value = f.value;

  auto def = W().catalog().GetTable("city");
  ASSERT_TRUE(def.ok());
  llm::KeyScanIntent intent;
  intent.concept_name = def.value()->entity_type;
  intent.key_attribute = def.value()->key_column;
  intent.page = 0;
  intent.filter = filter;
  EXPECT_EQ(llm::BuildKeyScanPrompt(intent).text, kLadderMergedScanPrompt);
}

TEST(MergedScanDriftTest, ExecutorIssuesTheLadderScanPrompt) {
  // End to end: the first wire-level prompt of the plan-driven executor
  // is byte-identical to the ladder's merged scan prompt.
  llm::SimulatedLlm inner(&W().kb(), FullCoverage(), &W().catalog(), 7);
  PromptRecorder model(&inner);
  core::ExecutionOptions options;
  options.pushdown_policy = core::PushdownPolicy::kAlways;
  core::GaloisExecutor executor(&model, &W().catalog(), options);
  auto out =
      executor.RunSql("SELECT name FROM city WHERE population > 1000000");
  ASSERT_TRUE(out.ok()) << out.status();
  ASSERT_FALSE(model.prompts.empty());
  EXPECT_EQ(model.prompts[0], kLadderMergedScanPrompt);
}

TEST(BindingTest, SimpleConjunctsConsumedInOrderResidualNull) {
  planner::BindingOptions binding;  // llm_filter_checks on by default
  planner::PlanNodePtr plan = Annotated(
      "SELECT name FROM city "
      "WHERE population > 1000000 AND country = 'Japan'",
      binding);
  const planner::PlanNode* scan = FindOp(*plan, planner::PlanOp::kScan);
  ASSERT_NE(scan, nullptr);
  ASSERT_EQ(scan->scan_filters.size(), 2u);
  EXPECT_EQ(scan->scan_filters[0].column, "population");
  EXPECT_EQ(scan->scan_filters[1].column, "country");
  const planner::PlanNode* filter =
      FindOp(*plan, planner::PlanOp::kFilter);
  ASSERT_NE(filter, nullptr);
  EXPECT_TRUE(filter->annotated);
  EXPECT_EQ(filter->residual, nullptr);  // everything consumed
}

TEST(BindingTest, NonSimpleConjunctStaysInResidual) {
  planner::BindingOptions binding;
  planner::PlanNodePtr plan = Annotated(
      "SELECT name FROM city "
      "WHERE population > 1000000 AND elevation < population",
      binding);
  const planner::PlanNode* scan = FindOp(*plan, planner::PlanOp::kScan);
  ASSERT_NE(scan, nullptr);
  ASSERT_EQ(scan->scan_filters.size(), 1u);  // only the literal compare
  EXPECT_EQ(scan->scan_filters[0].column, "population");
  const planner::PlanNode* filter =
      FindOp(*plan, planner::PlanOp::kFilter);
  ASSERT_NE(filter, nullptr);
  EXPECT_NE(filter->residual, nullptr);  // col-vs-col runs on the engine
}

TEST(BindingTest, FilterChecksOffConsumesNothing) {
  planner::BindingOptions binding;
  binding.llm_filter_checks = false;
  planner::PlanNodePtr plan = Annotated(
      "SELECT name FROM city WHERE population > 1000000", binding);
  const planner::PlanNode* scan = FindOp(*plan, planner::PlanOp::kScan);
  ASSERT_NE(scan, nullptr);
  EXPECT_TRUE(scan->scan_filters.empty());
  const planner::PlanNode* filter =
      FindOp(*plan, planner::PlanOp::kFilter);
  ASSERT_NE(filter, nullptr);
  EXPECT_NE(filter->residual, nullptr);
}

TEST(BindingTest, MergeDecisionFollowsPolicy) {
  const std::string sql =
      "SELECT name FROM city WHERE population > 1000000";
  {
    planner::BindingOptions always;
    always.merge_filter_into_scan = true;
    planner::PlanNodePtr plan = Annotated(sql, always);
    EXPECT_TRUE(FindOp(*plan, planner::PlanOp::kScan)->merge_first_filter);
  }
  {
    planner::BindingOptions never;
    planner::PlanNodePtr plan = Annotated(sql, never);
    EXPECT_FALSE(
        FindOp(*plan, planner::PlanOp::kScan)->merge_first_filter);
  }
  {
    // Auto: merge iff the catalog expects the table to be large enough.
    planner::BindingOptions auto_small;
    auto_small.merge_filter_auto = true;
    auto_small.auto_pushdown_min_rows = 1;
    planner::PlanNodePtr plan = Annotated(sql, auto_small);
    EXPECT_TRUE(FindOp(*plan, planner::PlanOp::kScan)->merge_first_filter);
  }
  {
    planner::BindingOptions auto_large;
    auto_large.merge_filter_auto = true;
    auto_large.auto_pushdown_min_rows = 1000000;
    planner::PlanNodePtr plan = Annotated(sql, auto_large);
    EXPECT_FALSE(
        FindOp(*plan, planner::PlanOp::kScan)->merge_first_filter);
  }
}

TEST(BindingTest, RetrieveReconciledWithConsumedFilterColumns) {
  // `country` is consumed as a scan filter and not projected, so the
  // retrieve node must not fetch it; `population` is projected and must
  // be fetched even though it is also a filter column.
  planner::BindingOptions binding;
  planner::PlanNodePtr plan = Annotated(
      "SELECT name, population FROM city WHERE country = 'Japan'",
      binding);
  const planner::PlanNode* retrieve =
      FindOp(*plan, planner::PlanOp::kRetrieve);
  ASSERT_NE(retrieve, nullptr);
  EXPECT_EQ(retrieve->columns,
            std::vector<std::string>{"population"});
}

TEST(BindingTest, LimitBoundLegality) {
  planner::BindingOptions binding;
  auto key_limit = [&](const std::string& sql,
                       const planner::BindingOptions& options) {
    planner::PlanNodePtr plan = Annotated(sql, options);
    return FindOp(*plan, planner::PlanOp::kScan)->scan_key_limit;
  };
  // The legal shape: Limit -> Project -> [Retrieve] -> Scan.
  EXPECT_EQ(key_limit("SELECT name FROM city LIMIT 5", binding), 5);
  EXPECT_EQ(key_limit("SELECT name, population FROM city LIMIT 5",
                      binding),
            5);
  // A WHERE may drop rows: the first N keys are not the first N rows.
  EXPECT_EQ(key_limit(
                "SELECT name FROM city WHERE population > 1000000 "
                "LIMIT 5",
                binding),
            -1);
  // Sort / distinct / aggregate reorder or collapse rows.
  EXPECT_EQ(key_limit("SELECT name FROM city ORDER BY name LIMIT 5",
                      binding),
            -1);
  EXPECT_EQ(key_limit("SELECT DISTINCT country FROM city LIMIT 5",
                      binding),
            -1);
  EXPECT_EQ(key_limit("SELECT COUNT(*) FROM city LIMIT 5", binding), -1);
  // The critic pass may reject scanned keys (verify_cells).
  planner::BindingOptions critic = binding;
  critic.scan_rows_may_drop = true;
  EXPECT_EQ(key_limit("SELECT name FROM city LIMIT 5", critic), -1);
  // Master switch.
  planner::BindingOptions off = binding;
  off.bound_scan_paging_by_limit = false;
  EXPECT_EQ(key_limit("SELECT name FROM city LIMIT 5", off), -1);
}

TEST(LimitBoundedScanTest, LimitBuysStrictlyFewerPages) {
  llm::ModelProfile profile = FullCoverage();
  profile.page_size = 5;  // many pages for an unbounded city scan
  core::ExecutionOptions options;
  options.verify_cells = false;  // keeps the bound legal

  llm::SimulatedLlm unbounded_model(&W().kb(), profile, &W().catalog(),
                                    7);
  core::GaloisExecutor unbounded(&unbounded_model, &W().catalog(),
                                 options);
  auto all = unbounded.RunSql("SELECT name FROM city");
  ASSERT_TRUE(all.ok()) << all.status();

  llm::SimulatedLlm limited_model(&W().kb(), profile, &W().catalog(), 7);
  core::GaloisExecutor limited(&limited_model, &W().catalog(), options);
  auto five = limited.RunSql("SELECT name FROM city LIMIT 5");
  ASSERT_TRUE(five.ok()) << five.status();

  EXPECT_EQ(five->relation.NumRows(), 5u);
  EXPECT_GT(all->relation.NumRows(), 5u);
  // Key-only scans issue exactly one prompt per page, so the cost meter
  // counts pages directly.
  EXPECT_LT(five->cost.num_prompts, all->cost.num_prompts);
  EXPECT_EQ(five->cost.num_prompts, 1);  // 5 keys fit in one 5-key page
}

}  // namespace
}  // namespace galois
