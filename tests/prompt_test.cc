// Tests for prompt templates and the prompt cache.

#include <gtest/gtest.h>

#include "knowledge/workload.h"
#include "llm/prompt_cache.h"
#include "llm/prompt_templates.h"
#include "llm/simulated_llm.h"

namespace galois::llm {
namespace {

TEST(PromptTemplatesTest, PreambleMatchesFigure4) {
  const std::string& p = FewShotPreamble();
  EXPECT_NE(p.find("highly intelligent question answering bot"),
            std::string::npos);
  EXPECT_NE(p.find("Dwight D. Eisenhower"), std::string::npos);
  EXPECT_NE(p.find("How many squigs are in a bonk?"), std::string::npos);
  EXPECT_NE(p.find("Unknown"), std::string::npos);
}

TEST(PromptTemplatesTest, OperatorPhrases) {
  EXPECT_EQ(OperatorPhrase("="), "equal to");
  EXPECT_EQ(OperatorPhrase("<"), "less than");
  EXPECT_EQ(OperatorPhrase(">"), "greater than");
  EXPECT_EQ(OperatorPhrase("<="), "at most");
  EXPECT_EQ(OperatorPhrase(">="), "at least");
  EXPECT_EQ(OperatorPhrase("!="), "different from");
  EXPECT_EQ(OperatorPhrase("LIKE"), "matching");
}

TEST(PromptTemplatesTest, Pluralize) {
  EXPECT_EQ(Pluralize("country"), "countries");
  EXPECT_EQ(Pluralize("city"), "cities");
  EXPECT_EQ(Pluralize("airport"), "airports");
  EXPECT_EQ(Pluralize("bus"), "buses");
  EXPECT_EQ(Pluralize("match"), "matches");
  EXPECT_EQ(Pluralize("day"), "days");  // vowel + y
}

TEST(PromptTemplatesTest, KeyScanPromptText) {
  KeyScanIntent intent;
  intent.concept_name = "country";
  intent.key_attribute = "name";
  Prompt p = BuildKeyScanPrompt(intent);
  EXPECT_NE(p.text.find("List the names of all countries."),
            std::string::npos);
  EXPECT_EQ(p.text.find("Return more results"), std::string::npos);
}

TEST(PromptTemplatesTest, KeyScanPaging) {
  KeyScanIntent intent;
  intent.concept_name = "country";
  intent.key_attribute = "name";
  intent.page = 2;
  Prompt p = BuildKeyScanPrompt(intent);
  EXPECT_NE(p.text.find("Return more results."), std::string::npos);
}

TEST(PromptTemplatesTest, KeyScanWithPushedFilter) {
  KeyScanIntent intent;
  intent.concept_name = "city";
  intent.key_attribute = "name";
  PromptFilter f;
  f.attribute = "population";
  f.op = ">";
  f.value = Value::Int(1000000);
  intent.filter = f;
  Prompt p = BuildKeyScanPrompt(intent);
  // Section 6's example: "get names of cities with > 1M population".
  EXPECT_NE(p.text.find(
                "List the names of all cities with population greater "
                "than 1000000."),
            std::string::npos);
}

TEST(PromptTemplatesTest, AttributePromptUsesDescription) {
  AttributeGetIntent intent;
  intent.concept_name = "city";
  intent.key = "Rome";
  intent.attribute = "mayor";
  intent.attribute_description = "current mayor";
  Prompt p = BuildAttributePrompt(intent);
  EXPECT_NE(p.text.find("What is the current mayor of the city Rome?"),
            std::string::npos);
}

TEST(PromptTemplatesTest, AttributePromptHumanizesLabel) {
  AttributeGetIntent intent;
  intent.concept_name = "mayor";
  intent.key = "James Smith";
  intent.attribute = "birthDate";
  Prompt p = BuildAttributePrompt(intent);
  EXPECT_NE(p.text.find("birth date"), std::string::npos);
}

TEST(PromptTemplatesTest, FilterPromptMatchesPaperTemplate) {
  // "Has relationName keyName attributeName operator value ?" instantiated
  // as "Has politician B. Obama age less than 40?" in the paper.
  FilterCheckIntent intent;
  intent.concept_name = "politician";
  intent.key = "B. Obama";
  intent.filter.attribute = "age";
  intent.filter.op = "<";
  intent.filter.value = Value::Int(40);
  Prompt p = BuildFilterPrompt(intent);
  EXPECT_NE(p.text.find("Has politician B. Obama age less than 40?"),
            std::string::npos);
}

TEST(PromptTemplatesTest, FreeformPlainAndCot) {
  FreeformIntent intent;
  intent.question = "What is the capital of Italy?";
  intent.sql = "SELECT capital FROM country WHERE name = 'Italy'";
  Prompt plain = BuildFreeformPrompt(intent);
  EXPECT_NE(plain.text.find("What is the capital of Italy?"),
            std::string::npos);
  EXPECT_EQ(plain.text.find("step by step"), std::string::npos);
  intent.chain_of_thought = true;
  Prompt cot = BuildFreeformPrompt(intent);
  EXPECT_NE(cot.text.find("Let's think step by step"), std::string::npos);
  EXPECT_NE(cot.text.find("break the task into steps"), std::string::npos);
}

class PromptCacheTest : public ::testing::Test {
 protected:
  PromptCacheTest()
      : workload_(*[]() {
          static auto w = knowledge::SpiderLikeWorkload::Create();
          return &w.value();
        }()),
        model_(&workload_.kb(), ModelProfile::ChatGpt(),
               &workload_.catalog(), 7),
        cache_(&model_) {}

  Prompt CapitalPrompt(const std::string& country) {
    AttributeGetIntent intent;
    intent.concept_name = "country";
    intent.key = country;
    intent.attribute = "capital";
    return BuildAttributePrompt(intent);
  }

  const knowledge::SpiderLikeWorkload& workload_;
  SimulatedLlm model_;
  PromptCache cache_;
};

TEST_F(PromptCacheTest, SecondCallIsCacheHit) {
  Prompt p = CapitalPrompt("Italy");
  auto a = cache_.Complete(p);
  auto b = cache_.Complete(p);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a.value().text, b.value().text);
  EXPECT_EQ(model_.cost().num_prompts, 1);  // inner hit once
  EXPECT_EQ(cache_.cost().cache_hits, 1);
  EXPECT_EQ(cache_.size(), 1u);
}

TEST_F(PromptCacheTest, DistinctPromptsMiss) {
  ASSERT_TRUE(cache_.Complete(CapitalPrompt("Italy")).ok());
  ASSERT_TRUE(cache_.Complete(CapitalPrompt("France")).ok());
  EXPECT_EQ(model_.cost().num_prompts, 2);
  EXPECT_EQ(cache_.cost().cache_hits, 0);
}

TEST_F(PromptCacheTest, ClearDropsEntries) {
  ASSERT_TRUE(cache_.Complete(CapitalPrompt("Italy")).ok());
  cache_.Clear();
  EXPECT_EQ(cache_.size(), 0u);
  ASSERT_TRUE(cache_.Complete(CapitalPrompt("Italy")).ok());
  EXPECT_EQ(model_.cost().num_prompts, 2);
}

TEST_F(PromptCacheTest, ResetCostClearsBothMeters) {
  ASSERT_TRUE(cache_.Complete(CapitalPrompt("Italy")).ok());
  ASSERT_TRUE(cache_.Complete(CapitalPrompt("Italy")).ok());
  cache_.ResetCost();
  EXPECT_EQ(cache_.cost().num_prompts, 0);
  EXPECT_EQ(cache_.cost().cache_hits, 0);
}

TEST(CountTokensTest, WhitespaceTokenizer) {
  EXPECT_EQ(CountTokens(""), 0);
  EXPECT_EQ(CountTokens("one"), 1);
  EXPECT_EQ(CountTokens("a b  c\nd\te"), 5);
}

TEST(CostMeterTest, Subtraction) {
  CostMeter a;
  a.num_prompts = 10;
  a.prompt_tokens = 100;
  CostMeter b;
  b.num_prompts = 4;
  b.prompt_tokens = 30;
  CostMeter d = a - b;
  EXPECT_EQ(d.num_prompts, 6);
  EXPECT_EQ(d.prompt_tokens, 70);
}

}  // namespace
}  // namespace galois::llm
