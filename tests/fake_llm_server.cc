#include "tests/fake_llm_server.h"

#include <algorithm>
#include <chrono>
#include <optional>

#include "common/json.h"
#include "llm/prompt_json.h"
#include "net/http.h"

namespace galois::tests {

namespace {

using llm::Completion;
using llm::CostMeter;
using llm::Prompt;
using llm::WireUsage;

/// Hard ceiling for reading one request / writing one response; requests
/// slower than this are dropped, which the client classifies as a
/// retryable transport fault.
constexpr int64_t kRequestIoBudgetMs = 10000;

/// Writes `data` best-effort: a client that hung up mid-response is its
/// own problem (the fault-injection schedules do exactly that).
void SendAll(int fd, const std::string& data) {
  (void)net::SendAll(fd, data, net::NowMs() + kRequestIoBudgetMs);
}

std::string HttpMessage(int code, const std::string& reason,
                        const std::string& body,
                        const std::string& extra_headers = "",
                        int64_t advertised_length = -1) {
  return net::BuildHttpResponse(code, reason, body, extra_headers,
                                advertised_length);
}

std::string ErrorBody(const std::string& message) {
  Json error = Json::Object();
  error.Set("message", Json::String(message));
  Json j = Json::Object();
  j.Set("error", std::move(error));
  return j.Dump();
}

}  // namespace

FakeLlmServer::FakeLlmServer(llm::LanguageModel* backing)
    : FakeLlmServer(backing, Options()) {}

FakeLlmServer::FakeLlmServer(llm::LanguageModel* backing, Options options)
    : backing_(backing), options_(options) {}

FakeLlmServer::~FakeLlmServer() { Stop(); }

Status FakeLlmServer::Start() {
  GALOIS_RETURN_IF_ERROR(listener_.Bind("127.0.0.1", 0, 64));
  port_ = listener_.port();
  stopping_.store(false);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void FakeLlmServer::Stop() {
  if (!listener_.listening() && !accept_thread_.joinable()) return;
  stopping_.store(true);
  if (accept_thread_.joinable()) accept_thread_.join();
  listener_.Close();
  std::vector<std::thread> workers;
  {
    std::lock_guard<std::mutex> lock(workers_mu_);
    workers.swap(workers_);
  }
  for (std::thread& t : workers) {
    if (t.joinable()) t.join();
  }
  std::lock_guard<std::mutex> lock(workers_mu_);
  finished_.clear();
}

llm::HttpLlmOptions FakeLlmServer::ClientOptions(
    std::string display_name) const {
  llm::HttpLlmOptions options;
  options.host = host();
  options.port = port_;
  options.wire_model = backing_->name();
  options.display_name =
      display_name.empty() ? backing_->name() : std::move(display_name);
  return options;
}

void FakeLlmServer::PushFault(Fault fault) {
  std::lock_guard<std::mutex> lock(faults_mu_);
  faults_.push_back(fault);
}

void FakeLlmServer::PushFaults(Fault fault, int count) {
  std::lock_guard<std::mutex> lock(faults_mu_);
  for (int i = 0; i < count; ++i) faults_.push_back(fault);
}

size_t FakeLlmServer::pending_faults() const {
  std::lock_guard<std::mutex> lock(faults_mu_);
  return faults_.size();
}

bool FakeLlmServer::NextFault(Fault* fault, int64_t request_number) {
  {
    std::lock_guard<std::mutex> lock(faults_mu_);
    if (!faults_.empty()) {
      *fault = faults_.front();
      faults_.pop_front();
      return true;
    }
  }
  if (options_.fault_every_n > 0 &&
      request_number % options_.fault_every_n == 0) {
    *fault = options_.periodic_fault;
    return true;
  }
  return false;
}

void FakeLlmServer::ReapFinishedWorkers() {
  std::vector<std::thread> done;
  {
    std::lock_guard<std::mutex> lock(workers_mu_);
    for (auto it = workers_.begin();
         it != workers_.end() && !finished_.empty();) {
      auto fin = std::find(finished_.begin(), finished_.end(),
                           it->get_id());
      if (fin != finished_.end()) {
        finished_.erase(fin);
        done.push_back(std::move(*it));
        it = workers_.erase(it);
      } else {
        ++it;
      }
    }
  }
  for (std::thread& t : done) t.join();  // finished: joins immediately
}

void FakeLlmServer::AcceptLoop() {
  while (!stopping_.load()) {
    Result<net::Fd> accepted = listener_.Accept(50);
    ReapFinishedWorkers();
    if (!accepted.ok()) continue;
    if (!accepted.value().valid()) continue;  // timeout slice
    int fd = accepted.value().release();
    std::lock_guard<std::mutex> lock(workers_mu_);
    workers_.emplace_back([this, fd] {
      HandleConnection(fd);
      std::lock_guard<std::mutex> inner(workers_mu_);
      finished_.push_back(std::this_thread::get_id());
    });
  }
}

Result<std::string> FakeLlmServer::Respond(const std::string& path,
                                           const std::string& body) {
  GALOIS_ASSIGN_OR_RETURN(Json request, Json::Parse(body));
  if (path == "/v1/chat/completions") {
    GALOIS_ASSIGN_OR_RETURN(Prompt prompt, llm::ParseChatRequest(request));
    CostMeter before, after;
    std::optional<Result<Completion>> completion;
    {
      // Serialised so the before/after delta is exactly this request's
      // bill — that delta is what makes loopback CostMeters byte-equal
      // to in-process ones.
      std::lock_guard<std::mutex> lock(backing_mu_);
      before = backing_->cost();
      completion.emplace(backing_->Complete(prompt));
      after = backing_->cost();
    }
    GALOIS_RETURN_IF_ERROR(completion->status());
    const CostMeter delta = after - before;
    WireUsage usage;
    usage.prompt_tokens = delta.prompt_tokens;
    usage.completion_tokens = delta.completion_tokens;
    usage.latency_ms = delta.simulated_latency_ms;
    completions_served_.fetch_add(1);
    return llm::BuildChatResponse(backing_->name(), completion->value(),
                                  usage)
        .Dump();
  }
  if (path == "/v1/batch_completions") {
    GALOIS_ASSIGN_OR_RETURN(std::vector<Prompt> prompts,
                            llm::ParseBatchRequest(request));
    CostMeter before, after;
    std::optional<Result<std::vector<Completion>>> completions;
    {
      std::lock_guard<std::mutex> lock(backing_mu_);
      before = backing_->cost();
      completions.emplace(backing_->CompleteBatch(prompts));
      after = backing_->cost();
    }
    GALOIS_RETURN_IF_ERROR(completions->status());
    const CostMeter delta = after - before;
    std::vector<WireUsage> per_prompt(prompts.size());
    for (size_t i = 0; i < prompts.size(); ++i) {
      per_prompt[i].prompt_tokens = llm::CountTokens(prompts[i].text);
      per_prompt[i].completion_tokens =
          llm::CountTokens(completions->value()[i].text);
    }
    std::vector<size_t> emit_order(prompts.size());
    for (size_t i = 0; i < prompts.size(); ++i) {
      emit_order[i] =
          options_.shuffle_batch_replies ? prompts.size() - 1 - i : i;
    }
    completions_served_.fetch_add(static_cast<int64_t>(prompts.size()));
    return llm::BuildBatchResponse(backing_->name(), completions->value(),
                                   per_prompt, delta.simulated_latency_ms,
                                   emit_order)
        .Dump();
  }
  return Status::NotFound("fake server: no handler for " + path);
}

void FakeLlmServer::HandleConnection(int fd) {
  // RAII ownership: every return path below closes the socket.
  net::Fd conn(fd);
  Result<net::HttpRequestMessage> request =
      net::ReadHttpRequest(fd, net::NowMs() + kRequestIoBudgetMs);
  if (!request.ok()) return;
  const std::string& method = request.value().method;
  const std::string& path = request.value().path;
  const std::string& body = request.value().body;
  const int64_t request_number = requests_seen_.fetch_add(1) + 1;

  Fault fault;
  if (NextFault(&fault, request_number)) {
    faults_injected_.fetch_add(1);
    switch (fault.kind) {
      case FaultKind::k429: {
        std::string extra;
        if (fault.retry_after_ms >= 0) {
          extra = "Retry-After-Ms: " + std::to_string(fault.retry_after_ms) +
                  "\r\n";
        }
        SendAll(fd, HttpMessage(429, "Too Many Requests",
                                ErrorBody("rate limit exceeded"), extra));
        break;
      }
      case FaultKind::k500:
        SendAll(fd, HttpMessage(500, "Internal Server Error",
                                ErrorBody("backend exploded")));
        break;
      case FaultKind::kStall:
        std::this_thread::sleep_for(
            std::chrono::milliseconds(fault.stall_ms));
        break;  // then close without a byte — client times out / sees EOF
      case FaultKind::kMalformedJson:
        SendAll(fd, HttpMessage(200, "OK", "{\"choices\":[{\"mess"));
        break;
      case FaultKind::kTruncatedBody: {
        const std::string partial = "{\"choices\":[";
        SendAll(fd, HttpMessage(200, "OK", partial, "",
                                /*advertised_length=*/4096));
        break;
      }
      case FaultKind::kCloseEarly:
        break;  // just close
    }
    return;
  }

  if (method != "POST") {
    SendAll(fd, HttpMessage(405, "Method Not Allowed",
                            ErrorBody("POST only")));
    return;
  }
  Result<std::string> response = Respond(path, body);
  if (!response.ok()) {
    SendAll(fd, HttpMessage(400, "Bad Request",
                            ErrorBody(response.status().message())));
  } else {
    SendAll(fd, HttpMessage(200, "OK", response.value()));
  }
}

}  // namespace galois::tests
