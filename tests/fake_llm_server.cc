#include "tests/fake_llm_server.h"

#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <optional>

#include "common/json.h"
#include "llm/prompt_json.h"

namespace galois::tests {

namespace {

using llm::Completion;
using llm::CostMeter;
using llm::Prompt;
using llm::WireUsage;

/// Reads one HTTP request (headers + Content-Length body) from `fd`.
/// Returns false on timeout/parse trouble — the connection is dropped,
/// which the client classifies as a retryable transport fault.
bool ReadRequest(int fd, std::string* method, std::string* path,
                 std::string* body) {
  std::string raw;
  char buf[4096];
  size_t header_end = std::string::npos;
  int64_t content_length = 0;
  const int kPollMs = 100;
  const int kMaxIdlePolls = 100;  // 10 s hard ceiling per request
  int idle = 0;
  while (true) {
    if (header_end != std::string::npos &&
        raw.size() >= header_end + 4 + static_cast<size_t>(content_length)) {
      break;
    }
    struct pollfd pfd;
    pfd.fd = fd;
    pfd.events = POLLIN;
    pfd.revents = 0;
    int rc = ::poll(&pfd, 1, kPollMs);
    if (rc == 0) {
      if (++idle > kMaxIdlePolls) return false;
      continue;
    }
    if (rc < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) return false;
    idle = 0;
    raw.append(buf, static_cast<size_t>(n));
    if (header_end == std::string::npos) {
      header_end = raw.find("\r\n\r\n");
      if (header_end != std::string::npos) {
        // Extract Content-Length (case-insensitive scan).
        std::string headers = raw.substr(0, header_end);
        for (char& c : headers) {
          c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
        }
        size_t pos = headers.find("content-length:");
        if (pos != std::string::npos) {
          content_length = std::strtoll(
              headers.c_str() + pos + std::strlen("content-length:"),
              nullptr, 10);
        }
      }
    }
  }
  const std::string request_line = raw.substr(0, raw.find("\r\n"));
  size_t sp1 = request_line.find(' ');
  size_t sp2 = request_line.find(' ', sp1 + 1);
  if (sp1 == std::string::npos || sp2 == std::string::npos) return false;
  *method = request_line.substr(0, sp1);
  *path = request_line.substr(sp1 + 1, sp2 - sp1 - 1);
  *body = raw.substr(header_end + 4,
                     static_cast<size_t>(content_length));
  return true;
}

void SendAll(int fd, const std::string& data) {
  size_t sent = 0;
  while (sent < data.size()) {
    ssize_t n = ::send(fd, data.data() + sent, data.size() - sent,
                       MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return;
    }
    sent += static_cast<size_t>(n);
  }
}

std::string HttpMessage(int code, const std::string& reason,
                        const std::string& body,
                        const std::string& extra_headers = "",
                        int64_t advertised_length = -1) {
  const int64_t length =
      advertised_length >= 0 ? advertised_length
                             : static_cast<int64_t>(body.size());
  return "HTTP/1.1 " + std::to_string(code) + " " + reason + "\r\n" +
         "Content-Type: application/json\r\n" + extra_headers +
         "Content-Length: " + std::to_string(length) +
         "\r\nConnection: close\r\n\r\n" + body;
}

std::string ErrorBody(const std::string& message) {
  Json error = Json::Object();
  error.Set("message", Json::String(message));
  Json j = Json::Object();
  j.Set("error", std::move(error));
  return j.Dump();
}

}  // namespace

FakeLlmServer::FakeLlmServer(llm::LanguageModel* backing)
    : FakeLlmServer(backing, Options()) {}

FakeLlmServer::FakeLlmServer(llm::LanguageModel* backing, Options options)
    : backing_(backing), options_(options) {}

FakeLlmServer::~FakeLlmServer() { Stop(); }

Status FakeLlmServer::Start() {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::Internal("fake server: socket() failed");
  }
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;  // ephemeral
  if (::bind(listen_fd_, reinterpret_cast<struct sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::Internal("fake server: bind() failed");
  }
  socklen_t len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<struct sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);
  if (::listen(listen_fd_, 64) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::Internal("fake server: listen() failed");
  }
  stopping_.store(false);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void FakeLlmServer::Stop() {
  if (listen_fd_ < 0 && !accept_thread_.joinable()) return;
  stopping_.store(true);
  if (accept_thread_.joinable()) accept_thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  std::vector<std::thread> workers;
  {
    std::lock_guard<std::mutex> lock(workers_mu_);
    workers.swap(workers_);
  }
  for (std::thread& t : workers) {
    if (t.joinable()) t.join();
  }
  std::lock_guard<std::mutex> lock(workers_mu_);
  finished_.clear();
}

llm::HttpLlmOptions FakeLlmServer::ClientOptions(
    std::string display_name) const {
  llm::HttpLlmOptions options;
  options.host = host();
  options.port = port_;
  options.wire_model = backing_->name();
  options.display_name =
      display_name.empty() ? backing_->name() : std::move(display_name);
  return options;
}

void FakeLlmServer::PushFault(Fault fault) {
  std::lock_guard<std::mutex> lock(faults_mu_);
  faults_.push_back(fault);
}

void FakeLlmServer::PushFaults(Fault fault, int count) {
  std::lock_guard<std::mutex> lock(faults_mu_);
  for (int i = 0; i < count; ++i) faults_.push_back(fault);
}

size_t FakeLlmServer::pending_faults() const {
  std::lock_guard<std::mutex> lock(faults_mu_);
  return faults_.size();
}

bool FakeLlmServer::NextFault(Fault* fault, int64_t request_number) {
  {
    std::lock_guard<std::mutex> lock(faults_mu_);
    if (!faults_.empty()) {
      *fault = faults_.front();
      faults_.pop_front();
      return true;
    }
  }
  if (options_.fault_every_n > 0 &&
      request_number % options_.fault_every_n == 0) {
    *fault = options_.periodic_fault;
    return true;
  }
  return false;
}

void FakeLlmServer::ReapFinishedWorkers() {
  std::vector<std::thread> done;
  {
    std::lock_guard<std::mutex> lock(workers_mu_);
    for (auto it = workers_.begin();
         it != workers_.end() && !finished_.empty();) {
      auto fin = std::find(finished_.begin(), finished_.end(),
                           it->get_id());
      if (fin != finished_.end()) {
        finished_.erase(fin);
        done.push_back(std::move(*it));
        it = workers_.erase(it);
      } else {
        ++it;
      }
    }
  }
  for (std::thread& t : done) t.join();  // finished: joins immediately
}

void FakeLlmServer::AcceptLoop() {
  while (!stopping_.load()) {
    struct pollfd pfd;
    pfd.fd = listen_fd_;
    pfd.events = POLLIN;
    pfd.revents = 0;
    int rc = ::poll(&pfd, 1, 50);
    ReapFinishedWorkers();
    if (rc <= 0) continue;
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    std::lock_guard<std::mutex> lock(workers_mu_);
    workers_.emplace_back([this, fd] {
      HandleConnection(fd);
      std::lock_guard<std::mutex> inner(workers_mu_);
      finished_.push_back(std::this_thread::get_id());
    });
  }
}

Result<std::string> FakeLlmServer::Respond(const std::string& path,
                                           const std::string& body) {
  GALOIS_ASSIGN_OR_RETURN(Json request, Json::Parse(body));
  if (path == "/v1/chat/completions") {
    GALOIS_ASSIGN_OR_RETURN(Prompt prompt, llm::ParseChatRequest(request));
    CostMeter before, after;
    std::optional<Result<Completion>> completion;
    {
      // Serialised so the before/after delta is exactly this request's
      // bill — that delta is what makes loopback CostMeters byte-equal
      // to in-process ones.
      std::lock_guard<std::mutex> lock(backing_mu_);
      before = backing_->cost();
      completion.emplace(backing_->Complete(prompt));
      after = backing_->cost();
    }
    GALOIS_RETURN_IF_ERROR(completion->status());
    const CostMeter delta = after - before;
    WireUsage usage;
    usage.prompt_tokens = delta.prompt_tokens;
    usage.completion_tokens = delta.completion_tokens;
    usage.latency_ms = delta.simulated_latency_ms;
    completions_served_.fetch_add(1);
    return llm::BuildChatResponse(backing_->name(), completion->value(),
                                  usage)
        .Dump();
  }
  if (path == "/v1/batch_completions") {
    GALOIS_ASSIGN_OR_RETURN(std::vector<Prompt> prompts,
                            llm::ParseBatchRequest(request));
    CostMeter before, after;
    std::optional<Result<std::vector<Completion>>> completions;
    {
      std::lock_guard<std::mutex> lock(backing_mu_);
      before = backing_->cost();
      completions.emplace(backing_->CompleteBatch(prompts));
      after = backing_->cost();
    }
    GALOIS_RETURN_IF_ERROR(completions->status());
    const CostMeter delta = after - before;
    std::vector<WireUsage> per_prompt(prompts.size());
    for (size_t i = 0; i < prompts.size(); ++i) {
      per_prompt[i].prompt_tokens = llm::CountTokens(prompts[i].text);
      per_prompt[i].completion_tokens =
          llm::CountTokens(completions->value()[i].text);
    }
    std::vector<size_t> emit_order(prompts.size());
    for (size_t i = 0; i < prompts.size(); ++i) {
      emit_order[i] =
          options_.shuffle_batch_replies ? prompts.size() - 1 - i : i;
    }
    completions_served_.fetch_add(static_cast<int64_t>(prompts.size()));
    return llm::BuildBatchResponse(backing_->name(), completions->value(),
                                   per_prompt, delta.simulated_latency_ms,
                                   emit_order)
        .Dump();
  }
  return Status::NotFound("fake server: no handler for " + path);
}

void FakeLlmServer::HandleConnection(int fd) {
  std::string method, path, body;
  if (!ReadRequest(fd, &method, &path, &body)) {
    ::close(fd);
    return;
  }
  const int64_t request_number = requests_seen_.fetch_add(1) + 1;

  Fault fault;
  if (NextFault(&fault, request_number)) {
    faults_injected_.fetch_add(1);
    switch (fault.kind) {
      case FaultKind::k429: {
        std::string extra;
        if (fault.retry_after_ms >= 0) {
          extra = "Retry-After-Ms: " + std::to_string(fault.retry_after_ms) +
                  "\r\n";
        }
        SendAll(fd, HttpMessage(429, "Too Many Requests",
                                ErrorBody("rate limit exceeded"), extra));
        break;
      }
      case FaultKind::k500:
        SendAll(fd, HttpMessage(500, "Internal Server Error",
                                ErrorBody("backend exploded")));
        break;
      case FaultKind::kStall:
        std::this_thread::sleep_for(
            std::chrono::milliseconds(fault.stall_ms));
        break;  // then close without a byte — client times out / sees EOF
      case FaultKind::kMalformedJson:
        SendAll(fd, HttpMessage(200, "OK", "{\"choices\":[{\"mess"));
        break;
      case FaultKind::kTruncatedBody: {
        const std::string partial = "{\"choices\":[";
        SendAll(fd, HttpMessage(200, "OK", partial, "",
                                /*advertised_length=*/4096));
        break;
      }
      case FaultKind::kCloseEarly:
        break;  // just close
    }
    ::close(fd);
    return;
  }

  if (method != "POST") {
    SendAll(fd, HttpMessage(405, "Method Not Allowed",
                            ErrorBody("POST only")));
    ::close(fd);
    return;
  }
  Result<std::string> response = Respond(path, body);
  if (!response.ok()) {
    SendAll(fd, HttpMessage(400, "Bad Request",
                            ErrorBody(response.status().message())));
  } else {
    SendAll(fd, HttpMessage(200, "OK", response.value()));
  }
  ::close(fd);
}

}  // namespace galois::tests
