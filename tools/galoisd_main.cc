// galoisd — the galois network daemon.
//
// Serves one galois::Database over the length-prefixed frame protocol
// (src/net/). A long-running, multi-client process: admission control
// bounds concurrent queries, SIGTERM/SIGINT drain gracefully (in-flight
// queries finish, responses flush, the persistent store syncs), and the
// kStats endpoint — or a final report on exit — exposes the live
// counters.
//
// Typical invocations:
//   galoisd --port 4547                       # simulated backend
//   galoisd --port 4547 --store /var/galois   # + persistent result store
//   galoisd --port 4547 --llm-host 10.0.0.5 --llm-port 8080
//                                             # real HTTP LLM backend

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include "api/database.h"
#include "net/galois_server.h"

namespace {

volatile std::sig_atomic_t g_stop = 0;

void HandleStopSignal(int) { g_stop = 1; }

void PrintUsage(const char* argv0) {
  std::printf(
      "usage: %s [options]\n"
      "\n"
      "  --host HOST            listen address (default 127.0.0.1)\n"
      "  --port PORT            listen port (default 4547; 0 = ephemeral)\n"
      "  --store DIR            persistent result store directory\n"
      "  --max-in-flight N      concurrent queries (default 8)\n"
      "  --queue-capacity N     waiting queries before rejection (default 64)\n"
      "  --deadline-ms MS       server-side per-query deadline cap (default none)\n"
      "  --seed N               simulated-backend seed (default 7); every node\n"
      "                         of a cluster must share it\n"
      "  --llm-host HOST        HTTP LLM backend host (default: simulated backend)\n"
      "  --llm-port PORT        HTTP LLM backend port\n"
      "  --no-cache             disable the cross-query materialisation cache\n"
      "  --stats-interval-s S   print stats to stderr every S seconds (default off)\n"
      "  --help                 this text\n",
      argv0);
}

bool ParseIntArg(const char* value, int64_t* out) {
  char* end = nullptr;
  long long v = std::strtoll(value, &end, 10);
  if (end == value || *end != '\0' || v < 0) return false;
  *out = static_cast<int64_t>(v);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string host = "127.0.0.1";
  int64_t port = 4547;
  std::string store_dir;
  int64_t max_in_flight = 8;
  int64_t queue_capacity = 64;
  int64_t deadline_ms = 0;
  int64_t seed = 7;
  std::string llm_host;
  int64_t llm_port = 0;
  bool cache = true;
  int64_t stats_interval_s = 0;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&](int64_t* out) {
      if (i + 1 >= argc || !ParseIntArg(argv[++i], out)) {
        std::fprintf(stderr, "galoisd: bad value for %s\n", arg.c_str());
        std::exit(2);
      }
    };
    if (arg == "--help" || arg == "-h") {
      PrintUsage(argv[0]);
      return 0;
    } else if (arg == "--host" && i + 1 < argc) {
      host = argv[++i];
    } else if (arg == "--port") {
      next(&port);
    } else if (arg == "--store" && i + 1 < argc) {
      store_dir = argv[++i];
    } else if (arg == "--max-in-flight") {
      next(&max_in_flight);
    } else if (arg == "--queue-capacity") {
      next(&queue_capacity);
    } else if (arg == "--deadline-ms") {
      next(&deadline_ms);
    } else if (arg == "--seed") {
      next(&seed);
    } else if (arg == "--llm-host" && i + 1 < argc) {
      llm_host = argv[++i];
    } else if (arg == "--llm-port") {
      next(&llm_port);
    } else if (arg == "--no-cache") {
      cache = false;
    } else if (arg == "--stats-interval-s") {
      next(&stats_interval_s);
    } else {
      std::fprintf(stderr, "galoisd: unknown argument '%s'\n", arg.c_str());
      PrintUsage(argv[0]);
      return 2;
    }
  }

  galois::DatabaseOptions db_options;
  db_options.llm_seed = static_cast<uint64_t>(seed);
  db_options.enable_materialisation_cache = cache;
  if (!store_dir.empty()) db_options.store.path = store_dir;
  if (!llm_host.empty()) {
    galois::BackendSpec backend;
    backend.name = "http";
    galois::llm::HttpLlmOptions http;
    http.host = llm_host;
    http.port = static_cast<int>(llm_port);
    backend.http = http;
    backend.resilience.emplace();  // retries/backoff at defaults
    backend.prompt_cache = true;
    db_options.backends.push_back(std::move(backend));
  }

  auto db = galois::Database::Open(std::move(db_options));
  if (!db.ok()) {
    std::fprintf(stderr, "galoisd: cannot open database: %s\n",
                 db.status().ToString().c_str());
    return 1;
  }

  galois::net::ServerOptions server_options;
  server_options.host = host;
  server_options.port = static_cast<int>(port);
  server_options.max_in_flight = static_cast<int>(max_in_flight);
  server_options.queue_capacity = static_cast<int>(queue_capacity);
  server_options.default_deadline_ms = deadline_ms;

  galois::net::GaloisServer server(db.value().get(), server_options);
  if (galois::Status started = server.Start(); !started.ok()) {
    std::fprintf(stderr, "galoisd: cannot listen on %s:%lld: %s\n",
                 host.c_str(), static_cast<long long>(port),
                 started.ToString().c_str());
    return 1;
  }

  std::signal(SIGTERM, HandleStopSignal);
  std::signal(SIGINT, HandleStopSignal);

  std::fprintf(stderr, "galoisd: serving on %s:%d (backend: %s%s)\n",
               host.c_str(), server.port(),
               llm_host.empty() ? "simulated" : llm_host.c_str(),
               store_dir.empty() ? "" : ", persistent store attached");

  int64_t last_stats_ms = galois::net::NowMs();
  while (g_stop == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    if (stats_interval_s > 0 &&
        galois::net::NowMs() - last_stats_ms >= stats_interval_s * 1000) {
      last_stats_ms = galois::net::NowMs();
      std::fprintf(stderr, "%s", server.stats().ToString().c_str());
    }
  }

  std::fprintf(stderr, "galoisd: draining...\n");
  server.Shutdown();
  std::fprintf(stderr, "galoisd: drained, final statistics:\n%s",
               server.stats().ToString().c_str());
  return 0;
}
