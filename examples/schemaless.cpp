// Schema-less querying (Section 6): two different-but-equivalent SQL
// formulations of the same information need should return the same answer
// when executed over an LLM, because the model itself has no schema.
//
//   Q1: SELECT c.name, cm.birthDate FROM city c, cityMayor cm
//       WHERE c.mayor = cm.name
//   Q2: SELECT name, mayorBirthDate FROM cityWithMayor
//
// We register a denormalised virtual table (cityWithMayor) whose
// attributes map onto the same KB facts — a catalog override on the
// galois::Database — run both queries, and measure how far the outputs
// diverge, quantifying the paper's open challenge.

#include <cstdio>

#include "api/database.h"
#include "catalog/catalog.h"
#include "eval/metrics.h"
#include "knowledge/workload.h"

namespace {

/// A denormalised city+mayor view over the same world: `mayorBirthDate` is
/// served by the KB's mayor concept through the city's mayor, which we
/// expose here as a first-class concept attribute for the demo.
galois::catalog::TableDef CityWithMayorTable() {
  galois::catalog::TableDef t;
  t.name = "cityWithMayor";
  t.entity_type = "city";
  t.key_column = "name";
  t.columns = {
      galois::catalog::ColumnDef("name", galois::DataType::kString, true,
                                 "city name"),
      galois::catalog::ColumnDef("mayor", galois::DataType::kString,
                                 false, "current mayor"),
      galois::catalog::ColumnDef("mayorBirthDate",
                                 galois::DataType::kDate, false,
                                 "birth date of the current mayor"),
  };
  return t;
}

}  // namespace

int main() {
  auto workload = galois::knowledge::SpiderLikeWorkload::Create();
  if (!workload.ok()) {
    std::fprintf(stderr, "workload: %s\n",
                 workload.status().ToString().c_str());
    return 1;
  }
  // The KB does not have a "mayorbirthdate" attribute on cities, so this
  // demo focuses on the *shared* attributes: both queries project the city
  // name and the mayor, which Q1 reaches via a join and Q2 directly.
  const char* q1 =
      "SELECT c.name, c.mayor FROM city c, cityMayor cm "
      "WHERE c.mayor = cm.name";
  const char* q2 = "SELECT name, mayor FROM cityWithMayor";

  galois::catalog::Catalog catalog;  // local copy plus the virtual table
  for (const std::string& name : workload->catalog().TableNames()) {
    auto def = workload->catalog().GetTable(name);
    (void)catalog.AddTable(*def.value());
    auto instance = workload->catalog().GetInstance(name);
    if (instance.ok()) {
      (void)catalog.AddInstance(name, *instance.value());
    }
  }
  if (!catalog.AddTable(CityWithMayorTable()).ok()) {
    std::fprintf(stderr, "failed to register cityWithMayor\n");
    return 1;
  }

  // The Database grounds its simulated model on the workload but binds
  // queries against the extended catalog.
  galois::DatabaseOptions options;
  options.workload = &workload.value();
  options.catalog = &catalog;
  auto db = galois::Database::Open(std::move(options));
  if (!db.ok()) {
    std::fprintf(stderr, "open: %s\n", db.status().ToString().c_str());
    return 1;
  }
  galois::Session session = (*db)->CreateSession();

  auto r1 = session.Query(q1);
  auto r2 = session.Query(q2);
  if (!r1.ok() || !r2.ok()) {
    std::fprintf(stderr, "execute failed: %s / %s\n",
                 r1.status().ToString().c_str(),
                 r2.status().ToString().c_str());
    return 1;
  }
  std::printf("Q1 (join formulation):     %zu rows\n",
              r1->relation.NumRows());
  std::printf("Q2 (denormalised ");
  std::printf("formulation): %zu rows\n", r2->relation.NumRows());

  // How equivalent are the two answers? Score each against the other with
  // the evaluation machinery (the larger one as reference avoids the
  // degenerate 0-cell case when a join collapses).
  const galois::Relation& reference =
      r1->relation.NumRows() >= r2->relation.NumRows() ? r1->relation
                                                       : r2->relation;
  const galois::Relation& other =
      r1->relation.NumRows() >= r2->relation.NumRows() ? r2->relation
                                                       : r1->relation;
  galois::eval::CellMatchResult overlap =
      galois::eval::MatchCells(reference, other);
  std::printf("Cell overlap between the two answers: %.0f%% (%zu of %zu "
              "cells)\n\n",
              overlap.Percent(), overlap.matched_cells,
              overlap.total_cells);
  std::printf(
      "A DBMS would guarantee 100%%: both scripts are correct "
      "translations of the\nsame question. Over an LLM the answers "
      "diverge — the Q1 plan issues a join\nwhose surface forms can "
      "mismatch, and the two plans page through different\nprompt "
      "sequences. This is the paper's schema-less equivalence "
      "challenge.\n");
  return 0;
}
