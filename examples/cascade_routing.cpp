// Cascade routing demo: run queries with the bulk retrieval phases on a
// cheap model and the critic-verification phase on a strong one — the
// cost lever behind Section 6's "verification is easier than generation":
// pay the strong model only for the easy checking direction.
//
// The stack assembled here is the recommended production shape
// (docs/ARCHITECTURE.md, "Backends & routing"):
//
//   GaloisExecutor -> ModelRouter -> { cheap backend, strong backend }
//
// with ExecutionOptions::phase_models declaring the routes. The run
// report shows every phase except "verify" billed to the cheap model and
// the critic prompts billed to the strong one, separated in the
// Per-backend spend breakdown (eval::FormatCostStats / CostMeter::
// by_model).
//
// Usage: cascade_routing [cheap-model] [strong-model]
//        (profile names: flan, tk, gpt-3, chatgpt; default flan chatgpt)

#include <cstdio>
#include <string>
#include <vector>

#include "core/galois_executor.h"
#include "eval/harness.h"
#include "eval/report.h"
#include "knowledge/workload.h"
#include "llm/model_router.h"
#include "llm/simulated_llm.h"

int main(int argc, char** argv) {
  const std::string cheap_name = argc > 1 ? argv[1] : "flan";
  const std::string strong_name = argc > 2 ? argv[2] : "chatgpt";

  auto workload = galois::knowledge::SpiderLikeWorkload::Create();
  if (!workload.ok()) {
    std::fprintf(stderr, "workload: %s\n",
                 workload.status().ToString().c_str());
    return 1;
  }
  auto cheap_profile = galois::llm::ModelProfile::ByName(cheap_name);
  auto strong_profile = galois::llm::ModelProfile::ByName(strong_name);
  if (!cheap_profile.ok() || !strong_profile.ok()) {
    std::fprintf(stderr, "unknown model profile (try flan/tk/gpt-3/chatgpt)\n");
    return 1;
  }

  // Two backends over the same world, one router in front.
  galois::llm::SimulatedLlm cheap(&workload->kb(), cheap_profile.value(),
                                  &workload->catalog());
  galois::llm::SimulatedLlm strong(&workload->kb(), strong_profile.value(),
                                   &workload->catalog());
  galois::llm::ModelRouter router;
  galois::Status status = router.AddBackend(cheap_name, &cheap);
  if (status.ok()) status = router.AddBackend(strong_name, &strong);
  if (status.ok()) status = router.SetDefaultBackend(cheap_name);
  if (!status.ok()) {
    std::fprintf(stderr, "router: %s\n", status.ToString().c_str());
    return 1;
  }

  // Declare the cascade in the options (the same map the eval harness and
  // the shell's .route command consume), then apply it to the router.
  galois::core::ExecutionOptions options;
  options.batch_prompts = true;
  options.verify_cells = true;  // the critic pass is what gets escalated
  options.phase_models["critic"] = strong_name;
  status = router.ConfigureRoutes(options.phase_models);
  if (!status.ok()) {
    std::fprintf(stderr, "routes: %s\n", status.ToString().c_str());
    return 1;
  }

  std::printf("Cascade: default backend '%s', critic verification -> '%s'\n",
              cheap_name.c_str(), strong_name.c_str());
  std::printf("options: %s\n\n", options.ToString().c_str());

  galois::core::GaloisExecutor executor(&router, &workload->catalog(),
                                        options);
  const std::vector<std::string> queries = {
      "SELECT name, capital FROM country WHERE continent = 'Oceania'",
      "SELECT name, population FROM city WHERE country = 'Italy'",
      "SELECT name, gdp FROM country WHERE continent = 'Europe'",
  };

  std::vector<galois::eval::QueryOutcome> outcomes;
  for (const std::string& sql : queries) {
    std::printf("galois> %s\n", sql.c_str());
    auto rm = executor.ExecuteSql(sql);
    if (!rm.ok()) {
      std::fprintf(stderr, "  %s\n", rm.status().ToString().c_str());
      return 1;
    }
    std::printf("%s", rm->ToPrettyString(10).c_str());

    const galois::llm::CostMeter& cost = executor.last_cost();
    std::printf("  -> %lld prompts", (long long)cost.num_prompts);
    for (const auto& [model, usage] : cost.by_model) {
      std::printf(", %s: %lld", model.c_str(),
                  (long long)usage.num_prompts);
    }
    std::printf("\n\n");

    galois::eval::QueryOutcome outcome;
    outcome.galois_cost = cost;
    outcomes.push_back(outcome);
  }

  // Whole-run cost report with the per-backend breakdown — the same
  // artifact the CI fault-injection job uploads.
  std::printf("%s", galois::eval::FormatCostStats(outcomes).c_str());

  // The demo's claim, checked: the strong model saw only critic prompts.
  const galois::llm::CostMeter total = router.cost();
  auto strong_slice = total.by_model.find(strong.name());
  auto cheap_slice = total.by_model.find(cheap.name());
  if (strong_slice == total.by_model.end() ||
      cheap_slice == total.by_model.end() ||
      strong_slice->second.num_prompts == 0 ||
      cheap_slice->second.num_prompts <= strong_slice->second.num_prompts) {
    std::fprintf(stderr,
                 "cascade shape violated: expected cheap > strong > 0\n");
    return 1;
  }
  std::printf(
      "\nCascade held: %lld bulk prompts on %s, %lld critic prompts on "
      "%s.\n",
      (long long)cheap_slice->second.num_prompts, cheap.name().c_str(),
      (long long)strong_slice->second.num_prompts, strong.name().c_str());
  return 0;
}
