// Cascade routing demo: run queries with the bulk retrieval phases on a
// cheap model and the critic-verification phase on a strong one — the
// cost lever behind Section 6's "verification is easier than generation":
// pay the strong model only for the easy checking direction.
//
// The stack assembled here is the recommended production shape
// (docs/ARCHITECTURE.md, "Backends & routing"), wired entirely by the
// galois::Database builder:
//
//   Session -> Database { ModelRouter -> { cheap backend, strong backend } }
//
// with ExecutionOptions::phase_models declaring the routes. Every
// QueryResult carries its own per-backend spend breakdown; the run
// report shows every phase except "verify" billed to the cheap model and
// the critic prompts billed to the strong one (eval::FormatCostStats /
// CostMeter::by_model).
//
// Usage: cascade_routing [cheap-model] [strong-model]
//        (profile names: flan, tk, gpt-3, chatgpt; default flan chatgpt)

#include <cstdio>
#include <string>
#include <vector>

#include "api/database.h"
#include "eval/harness.h"
#include "eval/report.h"

int main(int argc, char** argv) {
  const std::string cheap_name = argc > 1 ? argv[1] : "flan";
  const std::string strong_name = argc > 2 ? argv[2] : "chatgpt";

  auto cheap_profile = galois::llm::ModelProfile::ByName(cheap_name);
  auto strong_profile = galois::llm::ModelProfile::ByName(strong_name);
  if (!cheap_profile.ok() || !strong_profile.ok()) {
    std::fprintf(stderr, "unknown model profile (try flan/tk/gpt-3/chatgpt)\n");
    return 1;
  }

  // Two backends over the same world, the router assembled by the
  // builder from the declared routes; the cascade is stated once, in the
  // session-default options.
  galois::DatabaseOptions options;
  galois::BackendSpec cheap;
  cheap.name = cheap_name;
  cheap.simulated = cheap_profile.value();
  galois::BackendSpec strong;
  strong.name = strong_name;
  strong.simulated = strong_profile.value();
  options.backends.push_back(std::move(cheap));
  options.backends.push_back(std::move(strong));
  options.default_backend = cheap_name;
  options.execution.batch_prompts = true;
  options.execution.verify_cells = true;  // the escalated critic pass
  options.execution.phase_models["critic"] = strong_name;

  std::printf("Cascade: default backend '%s', critic verification -> '%s'\n",
              cheap_name.c_str(), strong_name.c_str());
  std::printf("options: %s\n\n", options.execution.ToString().c_str());

  auto db = galois::Database::Open(std::move(options));
  if (!db.ok()) {
    std::fprintf(stderr, "open: %s\n", db.status().ToString().c_str());
    return 1;
  }
  galois::Session session = (*db)->CreateSession();

  const std::vector<std::string> queries = {
      "SELECT name, capital FROM country WHERE continent = 'Oceania'",
      "SELECT name, population FROM city WHERE country = 'Italy'",
      "SELECT name, gdp FROM country WHERE continent = 'Europe'",
  };

  std::vector<galois::eval::QueryOutcome> outcomes;
  for (const std::string& sql : queries) {
    std::printf("galois> %s\n", sql.c_str());
    auto result = session.Query(sql);
    if (!result.ok()) {
      std::fprintf(stderr, "  %s\n", result.status().ToString().c_str());
      return 1;
    }
    std::printf("%s", result->relation.ToPrettyString(10).c_str());

    const galois::llm::CostMeter& cost = result->cost;
    std::printf("  -> %lld prompts", (long long)cost.num_prompts);
    for (const auto& [model, usage] : cost.by_model) {
      std::printf(", %s: %lld", model.c_str(),
                  (long long)usage.num_prompts);
    }
    std::printf("\n\n");

    galois::eval::QueryOutcome outcome;
    outcome.galois_cost = cost;
    outcomes.push_back(outcome);
  }

  // Whole-run cost report with the per-backend breakdown — the same
  // artifact the CI fault-injection job uploads.
  std::printf("%s", galois::eval::FormatCostStats(outcomes).c_str());

  // The demo's claim, checked: the strong model saw only critic prompts.
  // The Database's stack-wide meter aggregates every session's spend.
  const galois::llm::CostMeter total = (*db)->model()->cost();
  auto strong_slice = total.by_model.find(strong_profile->name);
  auto cheap_slice = total.by_model.find(cheap_profile->name);
  if (strong_slice == total.by_model.end() ||
      cheap_slice == total.by_model.end() ||
      strong_slice->second.num_prompts == 0 ||
      cheap_slice->second.num_prompts <= strong_slice->second.num_prompts) {
    std::fprintf(stderr,
                 "cascade shape violated: expected cheap > strong > 0\n");
    return 1;
  }
  std::printf(
      "\nCascade held: %lld bulk prompts on %s, %lld critic prompts on "
      "%s.\n",
      (long long)cheap_slice->second.num_prompts,
      cheap_profile->name.c_str(),
      (long long)strong_slice->second.num_prompts,
      strong_profile->name.c_str());
  return 0;
}
