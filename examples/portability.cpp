// Portability (Section 6): SQL scripts are portable across DB engines, so
// the same script executes on different LLMs — but, unlike DB engines, two
// models trained differently return different relations for the same
// query. This example opens one galois::Database per paper model over a
// shared workload and runs the same query through each, diffing the
// outputs against the ground truth.

#include <cstdio>

#include "api/database.h"
#include "engine/executor.h"
#include "eval/metrics.h"
#include "knowledge/workload.h"

int main() {
  auto workload = galois::knowledge::SpiderLikeWorkload::Create();
  if (!workload.ok()) {
    std::fprintf(stderr, "workload: %s\n",
                 workload.status().ToString().c_str());
    return 1;
  }
  const char* sql =
      "SELECT name FROM country WHERE independenceYear > 1950";
  std::printf("Query: %s\n\n", sql);

  auto truth = galois::engine::ExecuteSql(sql, workload->catalog());
  if (!truth.ok()) {
    std::fprintf(stderr, "ground truth: %s\n",
                 truth.status().ToString().c_str());
    return 1;
  }
  std::printf("Ground truth: %zu rows\n", truth->NumRows());

  for (const galois::llm::ModelProfile& profile :
       galois::llm::ModelProfile::AllPaperModels()) {
    galois::DatabaseOptions options;
    options.workload = &workload.value();
    galois::BackendSpec spec;
    spec.name = profile.name;
    spec.simulated = profile;
    options.backends.push_back(std::move(spec));
    auto db = galois::Database::Open(std::move(options));
    if (!db.ok()) {
      std::fprintf(stderr, "%s: %s\n", profile.name.c_str(),
                   db.status().ToString().c_str());
      continue;
    }
    auto result = (*db)->CreateSession().Query(sql);
    if (!result.ok()) {
      std::fprintf(stderr, "%s: %s\n", profile.name.c_str(),
                   result.status().ToString().c_str());
      continue;
    }
    galois::eval::CellMatchResult match =
        galois::eval::MatchCells(*truth, result->relation);
    std::printf(
        "%-20s rows=%-3zu cell match=%3.0f%%  prompts=%-4lld rows: ",
        profile.name.c_str(), result->relation.NumRows(), match.Percent(),
        static_cast<long long>(result->cost.num_prompts));
    size_t shown = 0;
    for (const galois::Tuple& row : result->relation.rows()) {
      if (shown++ == 4) {
        std::printf("...");
        break;
      }
      std::printf("%s%s", shown > 1 ? ", " : "",
                  row[0].ToString().c_str());
    }
    std::printf("\n");
  }
  std::printf(
      "\nSame SQL, four models, four different relations — the paper's "
      "portability\nchallenge: \"the same prompt does not give equivalent "
      "results across LLMs\".\n");
  return 0;
}
