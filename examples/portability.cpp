// Portability (Section 6): SQL scripts are portable across DB engines, so
// the same script executes on different LLMs — but, unlike DB engines, two
// models trained differently return different relations for the same
// query. This example runs one query on all four paper models and diffs
// the outputs against the ground truth.

#include <cstdio>

#include "core/galois_executor.h"
#include "engine/executor.h"
#include "eval/metrics.h"
#include "knowledge/workload.h"
#include "llm/model_profile.h"
#include "llm/simulated_llm.h"

int main() {
  auto workload = galois::knowledge::SpiderLikeWorkload::Create();
  if (!workload.ok()) {
    std::fprintf(stderr, "workload: %s\n",
                 workload.status().ToString().c_str());
    return 1;
  }
  const char* sql =
      "SELECT name FROM country WHERE independenceYear > 1950";
  std::printf("Query: %s\n\n", sql);

  auto truth = galois::engine::ExecuteSql(sql, workload->catalog());
  if (!truth.ok()) {
    std::fprintf(stderr, "ground truth: %s\n",
                 truth.status().ToString().c_str());
    return 1;
  }
  std::printf("Ground truth: %zu rows\n", truth->NumRows());

  for (const galois::llm::ModelProfile& profile :
       galois::llm::ModelProfile::AllPaperModels()) {
    galois::llm::SimulatedLlm model(&workload->kb(), profile,
                                    &workload->catalog());
    galois::core::GaloisExecutor galois(&model, &workload->catalog());
    auto result = galois.ExecuteSql(sql);
    if (!result.ok()) {
      std::fprintf(stderr, "%s: %s\n", profile.name.c_str(),
                   result.status().ToString().c_str());
      continue;
    }
    galois::eval::CellMatchResult match =
        galois::eval::MatchCells(*truth, *result);
    std::printf(
        "%-20s rows=%-3zu cell match=%3.0f%%  prompts=%-4lld rows: ",
        profile.name.c_str(), result->NumRows(), match.Percent(),
        static_cast<long long>(galois.last_cost().num_prompts));
    size_t shown = 0;
    for (const galois::Tuple& row : result->rows()) {
      if (shown++ == 4) {
        std::printf("...");
        break;
      }
      std::printf("%s%s", shown > 1 ? ", " : "",
                  row[0].ToString().c_str());
    }
    std::printf("\n");
  }
  std::printf(
      "\nSame SQL, four models, four different relations — the paper's "
      "portability\nchallenge: \"the same prompt does not give equivalent "
      "results across LLMs\".\n");
  return 0;
}
