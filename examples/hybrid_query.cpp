// Hybrid querying (Figure 2 of the paper): one SQL script that joins a
// table materialised from the LLM with a table stored in a traditional
// database. This is the introduction's motivating query:
//
//   SELECT c.GDP, AVG(e.salary)
//   FROM LLM.country c, DB.Employees e
//   WHERE c.code = e.countryCode
//   GROUP BY e.countryCode
//
// The `LLM.` relation is materialised by prompting; the `DB.` relation is
// read from storage; the join and the aggregate run on the classic engine.

#include <cstdio>

#include "core/galois_executor.h"
#include "knowledge/workload.h"
#include "llm/simulated_llm.h"

int main() {
  auto workload = galois::knowledge::SpiderLikeWorkload::Create();
  if (!workload.ok()) {
    std::fprintf(stderr, "workload: %s\n",
                 workload.status().ToString().c_str());
    return 1;
  }
  galois::llm::SimulatedLlm model(&workload->kb(),
                                  galois::llm::ModelProfile::ChatGpt(),
                                  &workload->catalog());
  galois::core::GaloisExecutor galois(&model, &workload->catalog());

  const char* sql =
      "SELECT c.name, c.gdp, AVG(e.salary) AS avgSalary "
      "FROM LLM.country c, DB.Employees e "
      "WHERE c.code = e.countryCode GROUP BY c.name "
      "ORDER BY avgSalary DESC";
  std::printf("Hybrid query:\n  %s\n\n", sql);

  auto result = galois.ExecuteSql(sql);
  if (!result.ok()) {
    std::fprintf(stderr, "execute: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  std::printf("%s\n", result->ToPrettyString(20).c_str());
  std::printf(
      "The Employees side cost 0 prompts; the country side cost %lld "
      "prompts.\n",
      static_cast<long long>(galois.last_cost().num_prompts));
  std::printf(
      "Note: GDP cells come from the model and can be hallucinated — "
      "re-run with\nModelProfile::Gpt3() or a perfect profile to see the "
      "difference.\n");
  return 0;
}
