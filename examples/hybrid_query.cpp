// Hybrid querying (Figure 2 of the paper): one SQL script that joins a
// table materialised from the LLM with a table stored in a traditional
// database. This is the introduction's motivating query:
//
//   SELECT c.GDP, AVG(e.salary)
//   FROM LLM.country c, DB.Employees e
//   WHERE c.code = e.countryCode
//   GROUP BY e.countryCode
//
// The `LLM.` relation is materialised by prompting; the `DB.` relation is
// read from storage; the join and the aggregate run on the classic engine.

#include <cstdio>

#include "api/database.h"

int main() {
  auto db = galois::Database::Open(galois::DatabaseOptions());
  if (!db.ok()) {
    std::fprintf(stderr, "open: %s\n", db.status().ToString().c_str());
    return 1;
  }
  galois::Session session = (*db)->CreateSession();

  const char* sql =
      "SELECT c.name, c.gdp, AVG(e.salary) AS avgSalary "
      "FROM LLM.country c, DB.Employees e "
      "WHERE c.code = e.countryCode GROUP BY c.name "
      "ORDER BY avgSalary DESC";
  std::printf("Hybrid query:\n  %s\n\n", sql);

  auto result = session.Query(sql);
  if (!result.ok()) {
    std::fprintf(stderr, "execute: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  std::printf("%s\n", result->relation.ToPrettyString(20).c_str());
  std::printf(
      "The Employees side cost 0 prompts; the country side cost %lld "
      "prompts.\n",
      static_cast<long long>(result->cost.num_prompts));
  std::printf(
      "Note: GDP cells come from the model and can be hallucinated — "
      "re-run with\nModelProfile::Gpt3() or a perfect profile to see the "
      "difference.\n");
  return 0;
}
