// Quickstart: run one SQL query against a language model with Galois.
//
// This walks the full public API surface:
//   1. build the world + workload catalog (stand-in for "the facts the LLM
//      absorbed in pre-training" plus the user-provided schema),
//   2. construct a model client (a simulated GPT-3.5-turbo profile),
//   3. show the logical plan with its LLM-specific physical operators,
//   4. execute the query with GaloisExecutor and print the relation plus
//      the prompt bill.
//
// Usage: quickstart ["SQL query"]

#include <cstdio>
#include <string>

#include "core/galois_executor.h"
#include "engine/executor.h"
#include "knowledge/workload.h"
#include "llm/simulated_llm.h"
#include "planner/planner.h"
#include "sql/parser.h"

int main(int argc, char** argv) {
  std::string sql =
      "SELECT name, capital FROM country WHERE continent = 'Europe'";
  if (argc > 1) sql = argv[1];

  // 1. World + catalog.
  auto workload = galois::knowledge::SpiderLikeWorkload::Create();
  if (!workload.ok()) {
    std::fprintf(stderr, "workload: %s\n",
                 workload.status().ToString().c_str());
    return 1;
  }

  // 2. Model client (swap the profile to Flan()/Tk()/Gpt3() to compare).
  galois::llm::SimulatedLlm model(&workload->kb(),
                                  galois::llm::ModelProfile::ChatGpt(),
                                  &workload->catalog());

  // 3. Logical plan, annotated with the LLM physical operators.
  auto stmt = galois::sql::ParseSelect(sql);
  if (!stmt.ok()) {
    std::fprintf(stderr, "parse: %s\n", stmt.status().ToString().c_str());
    return 1;
  }
  auto plan =
      galois::planner::BuildLogicalPlan(stmt.value(), workload->catalog());
  if (plan.ok()) {
    galois::planner::OptimizeLlmFilters(plan.value().get(),
                                        /*merge_into_scan=*/false);
    std::printf("Query: %s\n\nLogical plan (Figure 3 style):\n%s\n",
                sql.c_str(),
                galois::planner::Explain(*plan.value()).c_str());
  }

  // 4. Execute on the LLM, then compare against a classic DBMS run.
  galois::core::GaloisExecutor galois(&model, &workload->catalog());
  auto result = galois.ExecuteSql(sql);
  if (!result.ok()) {
    std::fprintf(stderr, "execute: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  std::printf("Galois result (R_M, retrieved from the LLM):\n%s\n",
              result->ToPrettyString(12).c_str());
  std::printf(
      "Prompt bill: %lld prompts, %lld prompt tokens, %.1f s simulated "
      "latency\n\n",
      static_cast<long long>(galois.last_cost().num_prompts),
      static_cast<long long>(galois.last_cost().prompt_tokens),
      galois.last_cost().simulated_latency_ms / 1000.0);

  auto truth = galois::engine::ExecuteSql(sql, workload->catalog());
  if (truth.ok()) {
    std::printf("Ground truth (R_D, classic DBMS execution):\n%s\n",
                truth->ToPrettyString(12).c_str());
  }
  return 0;
}
