// Quickstart: run one SQL query against a language model with Galois.
//
// This walks the public API surface:
//   1. open a galois::Database (world + catalog + a simulated
//      GPT-3.5-turbo backend, all wired by the builder),
//   2. show the logical plan with its LLM-specific physical operators,
//   3. create a Session and execute the query — the returned QueryResult
//      carries the relation plus the query's own prompt bill,
//   4. compare against a classic DBMS run over the ground truth.
//
// Usage: quickstart ["SQL query"]

#include <cstdio>
#include <string>

#include "api/database.h"
#include "engine/executor.h"
#include "planner/planner.h"
#include "sql/parser.h"

int main(int argc, char** argv) {
  std::string sql =
      "SELECT name, capital FROM country WHERE continent = 'Europe'";
  if (argc > 1) sql = argv[1];

  // 1. Database: defaults give the builtin workload and one simulated
  // ChatGpt backend (swap in BackendSpec{.simulated = ModelProfile::
  // Flan()} etc. to compare models).
  auto db = galois::Database::Open(galois::DatabaseOptions());
  if (!db.ok()) {
    std::fprintf(stderr, "open: %s\n", db.status().ToString().c_str());
    return 1;
  }

  // 2. Logical plan, annotated with the LLM physical operators.
  auto stmt = galois::sql::ParseSelect(sql);
  if (!stmt.ok()) {
    std::fprintf(stderr, "parse: %s\n", stmt.status().ToString().c_str());
    return 1;
  }
  auto plan =
      galois::planner::BuildLogicalPlan(stmt.value(), (*db)->catalog());
  if (plan.ok()) {
    galois::planner::OptimizeLlmFilters(plan.value().get(),
                                        /*merge_into_scan=*/false);
    std::printf("Query: %s\n\nLogical plan (Figure 3 style):\n%s\n",
                sql.c_str(),
                galois::planner::Explain(*plan.value()).c_str());
  }

  // 3. Execute on the LLM through a Session; the QueryResult is
  // self-contained (relation + this query's cost meter).
  galois::Session session = (*db)->CreateSession();
  auto result = session.Query(sql);
  if (!result.ok()) {
    std::fprintf(stderr, "execute: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  std::printf("Galois result (R_M, retrieved from the LLM):\n%s\n",
              result->relation.ToPrettyString(12).c_str());
  std::printf(
      "Prompt bill: %lld prompts, %lld prompt tokens, %.1f s simulated "
      "latency (%.0f ms wall)\n\n",
      static_cast<long long>(result->cost.num_prompts),
      static_cast<long long>(result->cost.prompt_tokens),
      result->cost.simulated_latency_ms / 1000.0, result->wall_ms);

  // 4. Ground truth from the classic engine.
  auto truth = galois::engine::ExecuteSql(sql, (*db)->catalog());
  if (truth.ok()) {
    std::printf("Ground truth (R_D, classic DBMS execution):\n%s\n",
                truth->ToPrettyString(12).c_str());
  }
  return 0;
}
