// Provenance (Section 6): "it is not possible to judge correctness
// without the origin of the information". Galois can record, for every
// cell it materialises from the model, the prompt and completion that
// produced it — and, with the critic enabled, whether a second model
// confirmed the value. This example prints the full lineage of a query.

#include <cstdio>

#include "core/galois_executor.h"
#include "knowledge/workload.h"
#include "llm/simulated_llm.h"

int main() {
  auto workload = galois::knowledge::SpiderLikeWorkload::Create();
  if (!workload.ok()) {
    std::fprintf(stderr, "workload: %s\n",
                 workload.status().ToString().c_str());
    return 1;
  }
  galois::llm::SimulatedLlm model(&workload->kb(),
                                  galois::llm::ModelProfile::ChatGpt(),
                                  &workload->catalog());
  galois::core::ExecutionOptions options;
  options.record_provenance = true;
  options.verify_cells = true;  // critic pass, Section 6
  galois::core::GaloisExecutor galois(&model, &workload->catalog(),
                                      options);

  const char* sql =
      "SELECT name, capital, population FROM country "
      "WHERE continent = 'Oceania'";
  std::printf("Query: %s\n\n", sql);
  auto result = galois.ExecuteSql(sql);
  if (!result.ok()) {
    std::fprintf(stderr, "execute: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  std::printf("%s\n", result->ToPrettyString().c_str());

  const galois::core::ExecutionTrace& trace = galois.last_trace();
  std::printf("Provenance (%zu cells, %zu rejected by the critic):\n%s\n",
              trace.cells.size(), trace.NumRejectedCells(),
              trace.ToString(/*max_cells=*/12).c_str());
  std::printf(
      "Each relation cell links back to the exact prompt/completion pair "
      "that\nproduced it — the post-processing flavour of provenance the "
      "paper calls for.\n");
  return 0;
}
