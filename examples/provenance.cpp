// Provenance (Section 6): "it is not possible to judge correctness
// without the origin of the information". Galois can record, for every
// cell it materialises from the model, the prompt and completion that
// produced it — and, with the critic enabled, whether a second model
// confirmed the value. This example prints the full lineage of a query,
// carried back inside the QueryResult.

#include <cstdio>

#include "api/database.h"

int main() {
  galois::DatabaseOptions options;
  options.execution.record_provenance = true;
  options.execution.verify_cells = true;  // critic pass, Section 6
  auto db = galois::Database::Open(std::move(options));
  if (!db.ok()) {
    std::fprintf(stderr, "open: %s\n", db.status().ToString().c_str());
    return 1;
  }
  galois::Session session = (*db)->CreateSession();

  const char* sql =
      "SELECT name, capital, population FROM country "
      "WHERE continent = 'Oceania'";
  std::printf("Query: %s\n\n", sql);
  auto result = session.Query(sql);
  if (!result.ok()) {
    std::fprintf(stderr, "execute: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  std::printf("%s\n", result->relation.ToPrettyString().c_str());

  const galois::core::ExecutionTrace& trace = result->trace;
  std::printf("Provenance (%zu cells, %zu rejected by the critic):\n%s\n",
              trace.cells.size(), trace.NumRejectedCells(),
              trace.ToString(/*max_cells=*/12).c_str());
  std::printf(
      "Each relation cell links back to the exact prompt/completion pair "
      "that\nproduced it — the post-processing flavour of provenance the "
      "paper calls for.\n");
  return 0;
}
