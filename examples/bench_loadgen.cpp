// bench_loadgen — closed-loop load generator for galoisd.
//
// N client threads, each with its own GaloisClient connection, replay
// the builtin 46-query workload round-robin against one or more running
// daemons and report throughput + latency percentiles (aggregate and
// per node), then scrape each server's own stats endpoint so
// client-side and server-side numbers can be compared in one place.
//
//   galoisd --port 4547 &
//   example_bench_loadgen --port 4547 --threads 4 --duration-s 10
//
// Multi-node: repeat --endpoint, workers round-robin across them:
//   galoisd --port 4547 & galoisd --port 4548 &
//   example_bench_loadgen --endpoint 127.0.0.1:4547 \
//                         --endpoint 127.0.0.1:4548 --threads 8
//
// --target-qps paces an open-ish loop (each thread sleeps to its share
// of the target rate); 0 means closed-loop (fire as fast as responses
// come back).

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "knowledge/workload.h"
#include "net/galois_client.h"

namespace {

struct Endpoint {
  std::string host = "127.0.0.1";
  int port = 0;
};

struct WorkerReport {
  std::vector<double> latencies_ms;
  int64_t ok = 0;
  int64_t errors = 0;
  size_t endpoint = 0;
};

void PrintUsage(const char* argv0) {
  std::printf(
      "usage: %s --port PORT [options]\n"
      "       %s --endpoint HOST:PORT [--endpoint HOST:PORT ...] [options]\n"
      "\n"
      "  --host HOST           daemon address (default 127.0.0.1)\n"
      "  --port PORT           daemon port (single-node shorthand)\n"
      "  --endpoint HOST:PORT  daemon endpoint; repeat for multi-node runs\n"
      "                        (workers round-robin across endpoints)\n"
      "  --threads N           client threads, one connection each (default 4)\n"
      "  --duration-s S        run time in seconds (default 5)\n"
      "  --target-qps Q        total paced rate; 0 = closed loop (default 0)\n"
      "  --deadline-ms MS      per-query deadline sent to the server (default 0)\n"
      "  --reconnects N        per-client auto-reconnect attempts (default 0)\n"
      "\n"
      "Replays the builtin 46-query workload round-robin and reports\n"
      "client-side latency percentiles (aggregate and per node) plus each\n"
      "daemon's own statistics.\n",
      argv0, argv0);
}

double Percentile(std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  size_t idx = static_cast<size_t>(p * static_cast<double>(sorted.size() - 1));
  return sorted[idx];
}

bool ParseEndpoint(const std::string& text, Endpoint* out) {
  const size_t colon = text.rfind(':');
  if (colon == std::string::npos || colon == 0 || colon + 1 >= text.size()) {
    return false;
  }
  out->host = text.substr(0, colon);
  out->port = std::atoi(text.c_str() + colon + 1);
  return out->port > 0;
}

void PrintPercentiles(const char* label, std::vector<double>& sorted,
                      int64_t ok, int64_t errors) {
  std::printf("  %-18s ok=%lld errors=%lld", label,
              static_cast<long long>(ok), static_cast<long long>(errors));
  if (!sorted.empty()) {
    std::printf(" p50=%.2fms p90=%.2fms p99=%.2fms max=%.2fms",
                Percentile(sorted, 0.50), Percentile(sorted, 0.90),
                Percentile(sorted, 0.99), sorted.back());
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  std::string host = "127.0.0.1";
  int port = 0;
  std::vector<Endpoint> endpoints;
  int threads = 4;
  int duration_s = 5;
  int target_qps = 0;
  int deadline_ms = 0;
  int reconnects = 0;

  // CI runs every example with no arguments as a smoke check; usage +
  // success is the contract there.
  if (argc <= 1) {
    PrintUsage(argv[0]);
    return 0;
  }
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next_int = [&]() {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "bench_loadgen: missing value for %s\n",
                     arg.c_str());
        std::exit(2);
      }
      return std::atoi(argv[++i]);
    };
    if (arg == "--help" || arg == "-h") {
      PrintUsage(argv[0]);
      return 0;
    } else if (arg == "--host" && i + 1 < argc) {
      host = argv[++i];
    } else if (arg == "--port") {
      port = next_int();
    } else if (arg == "--endpoint" && i + 1 < argc) {
      Endpoint ep;
      if (!ParseEndpoint(argv[++i], &ep)) {
        std::fprintf(stderr, "bench_loadgen: bad --endpoint '%s'\n", argv[i]);
        return 2;
      }
      endpoints.push_back(ep);
    } else if (arg == "--threads") {
      threads = std::max(1, next_int());
    } else if (arg == "--duration-s") {
      duration_s = std::max(1, next_int());
    } else if (arg == "--target-qps") {
      target_qps = next_int();
    } else if (arg == "--deadline-ms") {
      deadline_ms = next_int();
    } else if (arg == "--reconnects") {
      reconnects = std::max(0, next_int());
    } else {
      std::fprintf(stderr, "bench_loadgen: unknown argument '%s'\n",
                   arg.c_str());
      PrintUsage(argv[0]);
      return 2;
    }
  }
  if (endpoints.empty()) {
    if (port <= 0) {
      std::fprintf(stderr,
                   "bench_loadgen: --port or --endpoint is required\n");
      return 2;
    }
    endpoints.push_back({host, port});
  }

  // The same 46 queries the e2e suites replay; every worker walks the
  // list from a shared cursor so the mix is uniform regardless of
  // per-thread speed.
  auto workload = galois::knowledge::SpiderLikeWorkload::Create();
  if (!workload.ok()) {
    std::fprintf(stderr, "bench_loadgen: cannot build workload: %s\n",
                 workload.status().ToString().c_str());
    return 1;
  }
  std::vector<std::string> queries;
  for (const auto& wq : workload.value().queries()) queries.push_back(wq.sql);
  if (queries.empty()) {
    std::fprintf(stderr, "bench_loadgen: builtin workload is empty\n");
    return 1;
  }

  std::atomic<size_t> cursor{0};
  std::atomic<bool> stop{false};
  std::vector<WorkerReport> reports(static_cast<size_t>(threads));
  std::vector<std::thread> workers;

  const double per_thread_interval_ms =
      target_qps > 0 ? 1000.0 * threads / target_qps : 0.0;

  auto t_start = std::chrono::steady_clock::now();
  for (int t = 0; t < threads; ++t) {
    // Round-robin worker -> endpoint assignment: thread t drives node
    // t % nodes for its whole run (one persistent connection each).
    const size_t ep_index = static_cast<size_t>(t) % endpoints.size();
    reports[static_cast<size_t>(t)].endpoint = ep_index;
    workers.emplace_back([&, t, ep_index] {
      galois::net::ClientOptions copt;
      copt.host = endpoints[ep_index].host;
      copt.port = endpoints[ep_index].port;
      copt.reconnect_attempts = reconnects;
      auto client = galois::net::GaloisClient::Connect(copt);
      if (!client.ok()) {
        std::fprintf(stderr, "bench_loadgen: worker %d connect failed: %s\n",
                     t, client.status().ToString().c_str());
        reports[static_cast<size_t>(t)].errors = 1;
        return;
      }
      auto next_fire = std::chrono::steady_clock::now();
      while (!stop.load()) {
        if (per_thread_interval_ms > 0) {
          std::this_thread::sleep_until(next_fire);
          next_fire += std::chrono::microseconds(
              static_cast<int64_t>(per_thread_interval_ms * 1000));
          if (stop.load()) break;
        }
        const std::string& sql =
            queries[cursor.fetch_add(1) % queries.size()];
        auto q_start = std::chrono::steady_clock::now();
        auto result = client.value().Query(sql, deadline_ms);
        double ms = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - q_start)
                        .count();
        WorkerReport& report = reports[static_cast<size_t>(t)];
        if (result.ok()) {
          ++report.ok;
          report.latencies_ms.push_back(ms);
        } else {
          ++report.errors;
          if (!client.value().connected() && reconnects <= 0) {
            return;  // daemon gone and no reconnect budget
          }
        }
      }
    });
  }

  std::this_thread::sleep_for(std::chrono::seconds(duration_s));
  stop.store(true);
  for (std::thread& w : workers) w.join();
  double elapsed_s = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - t_start)
                         .count();

  int64_t ok = 0, errors = 0;
  std::vector<double> latencies;
  std::vector<std::vector<double>> node_latencies(endpoints.size());
  std::vector<int64_t> node_ok(endpoints.size(), 0);
  std::vector<int64_t> node_errors(endpoints.size(), 0);
  for (const WorkerReport& r : reports) {
    ok += r.ok;
    errors += r.errors;
    latencies.insert(latencies.end(), r.latencies_ms.begin(),
                     r.latencies_ms.end());
    node_ok[r.endpoint] += r.ok;
    node_errors[r.endpoint] += r.errors;
    node_latencies[r.endpoint].insert(node_latencies[r.endpoint].end(),
                                      r.latencies_ms.begin(),
                                      r.latencies_ms.end());
  }
  std::sort(latencies.begin(), latencies.end());

  std::printf("bench_loadgen: %d threads over %zu node%s, %.1fs%s\n", threads,
              endpoints.size(), endpoints.size() == 1 ? "" : "s", elapsed_s,
              target_qps > 0
                  ? (" @ " + std::to_string(target_qps) + " qps target").c_str()
                  : " closed-loop");
  std::printf("  throughput %.1f qps\n",
              elapsed_s > 0 ? static_cast<double>(ok) / elapsed_s : 0.0);
  PrintPercentiles("aggregate", latencies, ok, errors);
  if (endpoints.size() > 1) {
    for (size_t e = 0; e < endpoints.size(); ++e) {
      std::sort(node_latencies[e].begin(), node_latencies[e].end());
      const std::string label =
          endpoints[e].host + ":" + std::to_string(endpoints[e].port);
      PrintPercentiles(label.c_str(), node_latencies[e], node_ok[e],
                       node_errors[e]);
    }
  }

  // Server-side view of the same burst, one block per node.
  for (const Endpoint& ep : endpoints) {
    galois::net::ClientOptions sopt;
    sopt.host = ep.host;
    sopt.port = ep.port;
    auto stats_client = galois::net::GaloisClient::Connect(sopt);
    if (stats_client.ok()) {
      auto stats = stats_client.value().Stats();
      if (stats.ok()) {
        std::printf("\nnode %s:%d\n%s", ep.host.c_str(), ep.port,
                    stats.value().ToString().c_str());
      }
    }
  }

  return ok > 0 ? 0 : 1;
}
