// bench_loadgen — closed-loop load generator for galoisd.
//
// N client threads, each with its own GaloisClient connection, replay
// the builtin 46-query workload round-robin against a running daemon
// and report throughput + latency percentiles, then scrape the server's
// own stats endpoint so client-side and server-side numbers can be
// compared in one place.
//
//   galoisd --port 4547 &
//   example_bench_loadgen --port 4547 --threads 4 --duration-s 10
//
// --target-qps paces an open-ish loop (each thread sleeps to its share
// of the target rate); 0 means closed-loop (fire as fast as responses
// come back).

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "knowledge/workload.h"
#include "net/galois_client.h"

namespace {

struct WorkerReport {
  std::vector<double> latencies_ms;
  int64_t ok = 0;
  int64_t errors = 0;
};

void PrintUsage(const char* argv0) {
  std::printf(
      "usage: %s --port PORT [options]\n"
      "\n"
      "  --host HOST        daemon address (default 127.0.0.1)\n"
      "  --port PORT        daemon port (required to run)\n"
      "  --threads N        client threads, one connection each (default 4)\n"
      "  --duration-s S     run time in seconds (default 5)\n"
      "  --target-qps Q     total paced rate; 0 = closed loop (default 0)\n"
      "  --deadline-ms MS   per-query deadline sent to the server (default 0)\n"
      "\n"
      "Replays the builtin 46-query workload round-robin and reports\n"
      "client-side latency percentiles plus the daemon's own statistics.\n",
      argv0);
}

double Percentile(std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  size_t idx = static_cast<size_t>(p * static_cast<double>(sorted.size() - 1));
  return sorted[idx];
}

}  // namespace

int main(int argc, char** argv) {
  std::string host = "127.0.0.1";
  int port = 0;
  int threads = 4;
  int duration_s = 5;
  int target_qps = 0;
  int deadline_ms = 0;

  // CI runs every example with no arguments as a smoke check; usage +
  // success is the contract there.
  if (argc <= 1) {
    PrintUsage(argv[0]);
    return 0;
  }
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next_int = [&]() {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "bench_loadgen: missing value for %s\n",
                     arg.c_str());
        std::exit(2);
      }
      return std::atoi(argv[++i]);
    };
    if (arg == "--help" || arg == "-h") {
      PrintUsage(argv[0]);
      return 0;
    } else if (arg == "--host" && i + 1 < argc) {
      host = argv[++i];
    } else if (arg == "--port") {
      port = next_int();
    } else if (arg == "--threads") {
      threads = std::max(1, next_int());
    } else if (arg == "--duration-s") {
      duration_s = std::max(1, next_int());
    } else if (arg == "--target-qps") {
      target_qps = next_int();
    } else if (arg == "--deadline-ms") {
      deadline_ms = next_int();
    } else {
      std::fprintf(stderr, "bench_loadgen: unknown argument '%s'\n",
                   arg.c_str());
      PrintUsage(argv[0]);
      return 2;
    }
  }
  if (port <= 0) {
    std::fprintf(stderr, "bench_loadgen: --port is required\n");
    return 2;
  }

  // The same 46 queries the e2e suites replay; every worker walks the
  // list from a shared cursor so the mix is uniform regardless of
  // per-thread speed.
  auto workload = galois::knowledge::SpiderLikeWorkload::Create();
  if (!workload.ok()) {
    std::fprintf(stderr, "bench_loadgen: cannot build workload: %s\n",
                 workload.status().ToString().c_str());
    return 1;
  }
  std::vector<std::string> queries;
  for (const auto& wq : workload.value().queries()) queries.push_back(wq.sql);
  if (queries.empty()) {
    std::fprintf(stderr, "bench_loadgen: builtin workload is empty\n");
    return 1;
  }

  std::atomic<size_t> cursor{0};
  std::atomic<bool> stop{false};
  std::vector<WorkerReport> reports(static_cast<size_t>(threads));
  std::vector<std::thread> workers;

  const double per_thread_interval_ms =
      target_qps > 0 ? 1000.0 * threads / target_qps : 0.0;

  auto t_start = std::chrono::steady_clock::now();
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      galois::net::ClientOptions copt;
      copt.host = host;
      copt.port = port;
      auto client = galois::net::GaloisClient::Connect(copt);
      if (!client.ok()) {
        std::fprintf(stderr, "bench_loadgen: worker %d connect failed: %s\n",
                     t, client.status().ToString().c_str());
        reports[static_cast<size_t>(t)].errors = 1;
        return;
      }
      auto next_fire = std::chrono::steady_clock::now();
      while (!stop.load()) {
        if (per_thread_interval_ms > 0) {
          std::this_thread::sleep_until(next_fire);
          next_fire += std::chrono::microseconds(
              static_cast<int64_t>(per_thread_interval_ms * 1000));
          if (stop.load()) break;
        }
        const std::string& sql =
            queries[cursor.fetch_add(1) % queries.size()];
        auto q_start = std::chrono::steady_clock::now();
        auto result = client.value().Query(sql, deadline_ms);
        double ms = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - q_start)
                        .count();
        WorkerReport& report = reports[static_cast<size_t>(t)];
        if (result.ok()) {
          ++report.ok;
          report.latencies_ms.push_back(ms);
        } else {
          ++report.errors;
          if (!client.value().connected()) return;  // daemon gone
        }
      }
    });
  }

  std::this_thread::sleep_for(std::chrono::seconds(duration_s));
  stop.store(true);
  for (std::thread& w : workers) w.join();
  double elapsed_s = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - t_start)
                         .count();

  int64_t ok = 0, errors = 0;
  std::vector<double> latencies;
  for (const WorkerReport& r : reports) {
    ok += r.ok;
    errors += r.errors;
    latencies.insert(latencies.end(), r.latencies_ms.begin(),
                     r.latencies_ms.end());
  }
  std::sort(latencies.begin(), latencies.end());

  std::printf("bench_loadgen: %d threads, %.1fs%s\n", threads, elapsed_s,
              target_qps > 0 ? (" @ " + std::to_string(target_qps) + " qps target").c_str()
                             : " closed-loop");
  std::printf("  ok         %lld\n", static_cast<long long>(ok));
  std::printf("  errors     %lld\n", static_cast<long long>(errors));
  std::printf("  throughput %.1f qps\n",
              elapsed_s > 0 ? static_cast<double>(ok) / elapsed_s : 0.0);
  if (!latencies.empty()) {
    std::printf("  p50        %.2f ms\n", Percentile(latencies, 0.50));
    std::printf("  p90        %.2f ms\n", Percentile(latencies, 0.90));
    std::printf("  p99        %.2f ms\n", Percentile(latencies, 0.99));
    std::printf("  max        %.2f ms\n", latencies.back());
  }

  // Server-side view of the same burst.
  galois::net::ClientOptions sopt;
  sopt.host = host;
  sopt.port = port;
  auto stats_client = galois::net::GaloisClient::Connect(sopt);
  if (stats_client.ok()) {
    auto stats = stats_client.value().Stats();
    if (stats.ok()) {
      std::printf("\n%s", stats.value().ToString().c_str());
    }
  }

  return ok > 0 ? 0 : 1;
}
