// Interactive Galois shell: type SQL, get relations materialised from the
// language model. Dot-commands switch models and toggle executor options.
// The shell is a thin client of the public API: it owns its transports
// (so spend persists across reconfiguration) and rebuilds a
// galois::Database around them whenever the model, the routes or the
// backends change; every statement runs through galois::Session and
// prints from the self-contained QueryResult.
//
//   $ build/examples/galois_shell
//   galois> SELECT name FROM country WHERE continent = 'Oceania';
//   galois> .model gpt-3
//   galois> .sessions 4
//   galois> .explain on
//   galois> .tables
//   galois> .quit
//
// Also works non-interactively: echo "SELECT ..." | galois_shell

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "api/database.h"
#include "common/strings.h"
#include "engine/executor.h"
#include "eval/report.h"
#include "knowledge/workload.h"
#include "llm/http_llm.h"
#include "llm/model_profile.h"
#include "llm/simulated_llm.h"
#include "planner/planner.h"
#include "sql/parser.h"

namespace {

struct ShellState {
  const galois::knowledge::SpiderLikeWorkload* workload = nullptr;
  galois::llm::ModelProfile profile = galois::llm::ModelProfile::ChatGpt();
  galois::core::ExecutionOptions options;
  bool explain = false;
  bool ground_truth = false;  // run on the DB instead of the LLM
  int num_sessions = 1;       // .sessions N: concurrent async queries
  // Cross-query table reuse: survives across statements AND across
  // Database rebuilds (that is the point), cleared with `.cache clear`.
  galois::core::MaterialisationCache table_cache;
  bool cache_enabled = false;
  // Persistent result store (.store on [path]): journals the table cache
  // and the default backend's prompt cache so a later shell warm-starts
  // from disk. Empty = off.
  std::string store_path;
  // Shell-owned backends for .route targets: simulated profiles
  // materialise on demand, HTTP backends are added with `.backend http`.
  // Owned here (not by the Database) so `.backend` can show accumulated
  // per-backend spend across reconfigurations.
  std::map<std::string, std::unique_ptr<galois::llm::LanguageModel>>
      backends;
  // The Database assembled around the current model + routes; rebuilt by
  // Reopen() on every configuration change.
  std::unique_ptr<galois::Database> db;
  // The shell's session on that Database. Statements run through it so a
  // bare `.explain` can show the physical operator DAG of the last
  // query (Session::Explain); `.sessions N` fans out copies of it, which
  // share the same last-explain slot.
  std::optional<galois::Session> session;

  galois::llm::LanguageModel* GetOrCreateBackend(const std::string& name) {
    auto it = backends.find(name);
    if (it != backends.end()) return it->second.get();
    auto by_name = galois::llm::ModelProfile::ByName(name);
    if (!by_name.ok()) return nullptr;
    auto created = std::make_unique<galois::llm::SimulatedLlm>(
        &workload->kb(), by_name.value(), &workload->catalog());
    galois::llm::LanguageModel* raw = created.get();
    backends[name] = std::move(created);
    return raw;
  }

  /// (Re)opens the Database: current default model plus one external
  /// backend per .route target, routes from options.phase_models, the
  /// shell's persistent materialisation cache borrowed in.
  galois::Status Reopen() {
    galois::DatabaseOptions db_options;
    db_options.workload = workload;
    db_options.execution = options;
    db_options.materialisation_cache =
        cache_enabled ? &table_cache : nullptr;
    // The store journals prompt completions only through a PromptCache,
    // so .store implies one on the default backend.
    db_options.store.path = store_path;

    galois::BackendSpec default_spec;
    default_spec.name = "default";
    default_spec.simulated = profile;
    default_spec.prompt_cache = !store_path.empty();
    db_options.backends.push_back(std::move(default_spec));
    db_options.default_backend = "default";
    for (const auto& [phase, target] : options.phase_models) {
      (void)phase;
      if (target == "default" || db_options.HasBackend(target)) continue;
      galois::llm::LanguageModel* backend = GetOrCreateBackend(target);
      if (backend == nullptr) {
        return galois::Status::NotFound(
            "no backend or profile named '" + target +
            "' (add HTTP backends with .backend http <host> <port> "
            "[name])");
      }
      galois::BackendSpec spec;
      spec.name = target;
      spec.external = backend;
      db_options.backends.push_back(std::move(spec));
    }
    auto reopened = galois::Database::Open(std::move(db_options));
    if (!reopened.ok()) return reopened.status();
    db = std::move(reopened).value();
    session.emplace(db->CreateSession());
    return galois::Status::OK();
  }
};

void PrintHelp() {
  std::printf(
      "commands:\n"
      "  <SQL statement>;         execute on the current model\n"
      "  .model <flan|tk|gpt-3|chatgpt>   switch model profile\n"
      "  .explain                 physical operator DAG of the last query\n"
      "                           with per-operator rows/round trips/cost\n"
      "  .explain <on|off>        print the logical plan before running\n"
      "  .truth <on|off>          run on the ground-truth DB instead\n"
      "  .pushdown <never|always|auto>    selection pushdown policy\n"
      "  .verify <on|off>         critic verification of every cell\n"
      "  .batch <on|off>          batched prompt round trips\n"
      "  .parallel <n> [chunk]    round trips in flight per phase (needs\n"
      "                           .batch on); chunk sets max_batch_size\n"
      "  .pipeline <on|off>       overlap independent phases (tables,\n"
      "                           columns, critic passes)\n"
      "  .prefetch <n>            speculative key-scan pages in flight\n"
      "                           ahead of consumption; 0 disables\n"
      "  .sessions <n>            run each statement as n concurrent\n"
      "                           sessions (results verified identical)\n"
      "  .deadline <ms>           per-query deadline; 0 disables\n"
      "  .cache <on|off|clear|stats>  cross-query materialisation cache\n"
      "  .store on [path]         persist results to an on-disk store\n"
      "                           (default path galois_store); a later\n"
      "                           shell warm-starts from it\n"
      "  .store <off|stats|vacuum>    disable / inspect / compact it\n"
      "  .route <phase> <backend> send a phase (key-scan, filter-check,\n"
      "                           attribute, verify/critic, freeform) to a\n"
      "                           backend: a profile name or a .backend\n"
      "                           name; `.route clear` resets, `.route`\n"
      "                           lists routes\n"
      "  .backend                 list backends with per-backend spend\n"
      "  .backend http <host> <port> [name]   register an HTTP backend\n"
      "                           (OpenAI-compatible; name defaults to\n"
      "                           'http')\n"
      "  .tables                  list catalog tables\n"
      "  .options                 show executor options\n"
      "  .help | .quit\n");
}

bool HandleCommand(ShellState* state, const std::string& line) {
  std::vector<std::string> words =
      galois::Split(line, ' ', /*trim=*/true, /*skip_empty=*/true);
  const std::string& cmd = words[0];
  auto arg = [&words]() -> std::string {
    return words.size() > 1 ? galois::ToLower(words[1]) : "";
  };
  // Most commands mutate the configuration; they funnel through here so
  // the Database is reassembled exactly once per change.
  bool reopen = false;
  if (cmd == ".quit" || cmd == ".exit") return false;
  if (cmd == ".help") {
    PrintHelp();
  } else if (cmd == ".model") {
    auto profile = galois::llm::ModelProfile::ByName(arg());
    if (!profile.ok()) {
      std::printf("unknown model '%s' (try flan, tk, gpt-3, chatgpt)\n",
                  arg().c_str());
    } else {
      state->profile = profile.value();
      std::printf("model: %s\n", state->profile.name.c_str());
      reopen = true;
    }
  } else if (cmd == ".explain") {
    if (words.size() == 1) {
      // Bare `.explain`: the physical operator DAG the last query
      // actually executed, with per-operator statistics.
      std::string report = state->session->Explain();
      if (report.empty()) {
        std::printf("no query yet (run a statement, then .explain)\n");
      } else {
        std::printf("%s", report.c_str());
      }
    } else {
      state->explain = arg() != "off";
    }
  } else if (cmd == ".truth") {
    state->ground_truth = arg() != "off";
  } else if (cmd == ".verify") {
    state->options.verify_cells = arg() != "off";
    reopen = true;
  } else if (cmd == ".batch") {
    state->options.batch_prompts = arg() != "off";
    reopen = true;
  } else if (cmd == ".parallel") {
    int n = std::atoi(arg().c_str());
    state->options.parallel_batches = n < 1 ? 1 : n;
    if (words.size() > 2) {
      int chunk = std::atoi(words[2].c_str());
      state->options.max_batch_size =
          chunk < 0 ? 0 : static_cast<size_t>(chunk);
    } else if (state->options.parallel_batches > 1 &&
               state->options.max_batch_size == 0) {
      // Whole-phase batches leave nothing to overlap; pick a sane chunk.
      state->options.max_batch_size = 8;
    }
    reopen = true;
  } else if (cmd == ".pipeline") {
    state->options.pipeline_phases = arg() != "off";
    reopen = true;
  } else if (cmd == ".prefetch") {
    int n = std::atoi(arg().c_str());
    state->options.prefetch_pages = n < 0 ? 0 : n;
    std::printf("key-scan prefetch: %d pages ahead\n",
                state->options.prefetch_pages);
    reopen = true;
  } else if (cmd == ".sessions") {
    int n = std::atoi(arg().c_str());
    state->num_sessions = n < 1 ? 1 : n;
    std::printf("sessions: %d\n", state->num_sessions);
  } else if (cmd == ".deadline") {
    int64_t ms = std::atoll(arg().c_str());
    state->options.query_deadline_ms = ms < 0 ? 0 : ms;
    reopen = true;
  } else if (cmd == ".cache") {
    if (arg() == "clear") {
      state->table_cache.Clear();
      std::printf("materialisation cache cleared\n");
    } else if (arg() == "stats") {
      auto stats = state->table_cache.stats();
      std::printf(
          "materialisation cache: %s, %zu entries, %lld hits / %lld "
          "lookups (%lld exact, %lld by predicate subsumption, %lld by "
          "column projection), %lld insertions, %lld evictions\n",
          state->cache_enabled ? "on" : "off", state->table_cache.size(),
          static_cast<long long>(stats.hits),
          static_cast<long long>(stats.lookups),
          static_cast<long long>(stats.exact_hits),
          static_cast<long long>(stats.predicate_subsumption_hits),
          static_cast<long long>(stats.subsumption_hits),
          static_cast<long long>(stats.insertions),
          static_cast<long long>(stats.evictions));
    } else {
      state->cache_enabled = arg() != "off";
      reopen = true;
    }
  } else if (cmd == ".store") {
    if (arg() == "on") {
      state->store_path = words.size() > 2 ? words[2] : "galois_store";
      std::printf("persistent store: %s\n", state->store_path.c_str());
      reopen = true;
    } else if (arg() == "off") {
      state->store_path.clear();
      std::printf("persistent store off\n");
      reopen = true;
    } else if (arg() == "stats") {
      if (state->db->store() == nullptr) {
        std::printf("no store (enable with .store on [path])\n");
      } else {
        std::printf("%s", galois::eval::FormatStoreStats(
                              state->db->store()->stats())
                              .c_str());
      }
    } else if (arg() == "vacuum") {
      if (state->db->store() == nullptr) {
        std::printf("no store (enable with .store on [path])\n");
      } else {
        galois::Status s = state->db->store()->Vacuum();
        auto stats = state->db->store()->stats();
        if (s.ok()) {
          std::printf("vacuumed: %lld bytes live / %lld on disk\n",
                      static_cast<long long>(stats.live_bytes),
                      static_cast<long long>(stats.file_bytes));
        } else {
          std::printf("%s\n", s.ToString().c_str());
        }
      }
    } else {
      std::printf("usage: .store on [path] | off | stats | vacuum\n");
    }
  } else if (cmd == ".route") {
    if (words.size() == 1) {
      if (state->options.phase_models.empty()) {
        std::printf("no routes; every phase uses the default model %s\n",
                    state->profile.name.c_str());
      }
      for (const auto& [phase, backend] : state->options.phase_models) {
        std::printf("  %-12s -> %s\n", phase.c_str(), backend.c_str());
      }
    } else if (arg() == "clear") {
      state->options.phase_models.clear();
      std::printf("routes cleared\n");
      reopen = true;
    } else if (words.size() >= 3) {
      std::string phase = galois::ToLower(words[1]);
      std::string backend = words[2];
      auto saved = state->options.phase_models;
      state->options.phase_models[phase] = backend;
      galois::Status s = state->Reopen();
      if (!s.ok()) {
        state->options.phase_models = std::move(saved);
        (void)state->Reopen();  // restore the previous wiring
        std::printf("%s\n", s.ToString().c_str());
      } else {
        std::printf("route: %s -> %s\n", phase.c_str(), backend.c_str());
      }
    } else {
      std::printf("usage: .route <phase> <backend> | .route clear\n");
    }
  } else if (cmd == ".backend") {
    if (words.size() >= 4 && arg() == "http") {
      galois::llm::HttpLlmOptions http_options;
      http_options.host = words[2];
      http_options.port = std::atoi(words[3].c_str());
      std::string name = words.size() > 4 ? words[4] : "http";
      http_options.display_name = name;
      if (http_options.port <= 0) {
        std::printf("bad port '%s'\n", words[3].c_str());
      } else if (state->backends.count(name) > 0) {
        std::printf("backend '%s' already exists\n", name.c_str());
      } else {
        state->backends[name] =
            std::make_unique<galois::llm::HttpLlm>(http_options);
        std::printf("backend %s: http://%s:%d (route phases to it with "
                    ".route <phase> %s)\n",
                    name.c_str(), http_options.host.c_str(),
                    http_options.port, name.c_str());
      }
    } else if (words.size() == 1) {
      std::printf("  %-12s %s (default)\n", "default",
                  state->profile.name.c_str());
      for (const auto& [name, backend] : state->backends) {
        galois::llm::CostMeter cost = backend->cost();
        std::printf("  %-12s %s — %lld prompts, %lld batches so far\n",
                    name.c_str(), backend->name().c_str(),
                    static_cast<long long>(cost.num_prompts),
                    static_cast<long long>(cost.num_batches));
      }
    } else {
      std::printf("usage: .backend | .backend http <host> <port> [name]\n");
    }
  } else if (cmd == ".pushdown") {
    if (arg() == "always") {
      state->options.pushdown_policy =
          galois::core::PushdownPolicy::kAlways;
    } else if (arg() == "auto") {
      state->options.pushdown_policy = galois::core::PushdownPolicy::kAuto;
    } else {
      state->options.pushdown_policy =
          galois::core::PushdownPolicy::kNever;
    }
    reopen = true;
  } else if (cmd == ".tables") {
    for (const std::string& name :
         state->workload->catalog().TableNames()) {
      auto def = state->workload->catalog().GetTable(name);
      std::printf("  %-12s [%s] key=%s, %zu columns\n", name.c_str(),
                  galois::catalog::SourceKindName(
                      def.value()->default_source),
                  def.value()->key_column.c_str(),
                  def.value()->columns.size());
    }
  } else if (cmd == ".options") {
    std::printf("%s\n", state->options.ToString().c_str());
  } else {
    std::printf("unknown command %s (try .help)\n", cmd.c_str());
  }
  if (reopen) {
    galois::Status s = state->Reopen();
    if (!s.ok()) std::printf("%s\n", s.ToString().c_str());
  }
  return true;
}

void PrintResult(const galois::QueryResult& result) {
  std::printf("%s", result.relation.ToPrettyString(30).c_str());
  if (result.table_cache_hits > 0) {
    std::printf("(%lld prompts, %.1f s simulated, %lld/%lld tables from "
                "cache)\n",
                static_cast<long long>(result.cost.num_prompts),
                result.cost.simulated_latency_ms / 1000.0,
                static_cast<long long>(result.table_cache_hits),
                static_cast<long long>(result.table_cache_lookups));
  } else {
    std::printf("(%lld prompts, %.1f s simulated)\n",
                static_cast<long long>(result.cost.num_prompts),
                result.cost.simulated_latency_ms / 1000.0);
  }
  if (result.table_cache_subsumption_hits > 0) {
    std::printf("(%lld tables served by predicate subsumption)\n",
                static_cast<long long>(result.table_cache_subsumption_hits));
  }
  if (result.scan_pages_prefetched > 0) {
    std::printf("(%lld scan pages prefetched, %lld overfetched)\n",
                static_cast<long long>(result.scan_pages_prefetched),
                static_cast<long long>(result.scan_pages_overfetched));
  }
  if (result.table_cache_store_hits > 0 || result.cost.store_hits > 0) {
    std::printf("(persistent store: %lld tables, %lld prompts served "
                "from disk)\n",
                static_cast<long long>(result.table_cache_store_hits),
                static_cast<long long>(result.cost.store_hits));
  }
  if (result.cost.by_model.size() > 1) {
    // Routed query: show where the prompts went.
    std::printf("(");
    bool first = true;
    for (const auto& [model, usage] : result.cost.by_model) {
      std::printf("%s%s: %lld", first ? "" : ", ", model.c_str(),
                  static_cast<long long>(usage.num_prompts));
      first = false;
    }
    std::printf(")\n");
  }
}

void RunSql(ShellState* state, const std::string& sql) {
  auto stmt = galois::sql::ParseSelect(sql);
  if (!stmt.ok()) {
    std::printf("%s\n", stmt.status().ToString().c_str());
    return;
  }
  if (state->explain) {
    auto plan = galois::planner::BuildLogicalPlan(
        stmt.value(), state->workload->catalog());
    if (plan.ok()) {
      galois::planner::OptimizeLlmFilters(
          plan.value().get(),
          state->options.EffectivePushdown() !=
              galois::core::PushdownPolicy::kNever);
      std::printf("%s", galois::planner::Explain(*plan.value()).c_str());
    }
  }
  if (state->ground_truth) {
    auto rd = galois::engine::ExecuteSelect(stmt.value(),
                                            state->workload->catalog());
    if (!rd.ok()) {
      std::printf("%s\n", rd.status().ToString().c_str());
      return;
    }
    std::printf("%s", rd->ToPrettyString(30).c_str());
    return;
  }

  if (state->num_sessions <= 1) {
    auto result = state->session->Query(sql);
    if (!result.ok()) {
      std::printf("%s\n", result.status().ToString().c_str());
      return;
    }
    PrintResult(*result);
    return;
  }

  // .sessions N: the same statement dispatched as N concurrent sessions
  // against the one Database — the demo of the concurrency contract.
  // Results must be byte-identical; per-session meters are printed so
  // exact per-query attribution is visible.
  std::vector<galois::Session> sessions;
  std::vector<galois::AsyncQuery> in_flight;
  for (int s = 0; s < state->num_sessions; ++s) {
    // Copies of the shell session: independent queries, shared
    // last-explain slot (whichever finishes last is what .explain shows).
    sessions.push_back(*state->session);
    in_flight.push_back(sessions.back().QueryAsync(sql));
  }
  std::vector<galois::QueryResult> results;
  for (int s = 0; s < state->num_sessions; ++s) {
    auto result = in_flight[s].Join();
    if (!result.ok()) {
      std::printf("session %d: %s\n", s,
                  result.status().ToString().c_str());
      return;
    }
    results.push_back(std::move(result).value());
  }
  PrintResult(results[0]);
  bool identical = true;
  for (int s = 1; s < state->num_sessions; ++s) {
    if (!results[s].relation.SameContents(results[0].relation)) {
      identical = false;
    }
  }
  std::printf("%d concurrent sessions: results %s;", state->num_sessions,
              identical ? "identical" : "DIVERGED");
  for (int s = 0; s < state->num_sessions; ++s) {
    std::printf(" s%d=%lldp/%.0fms", s,
                static_cast<long long>(results[s].cost.num_prompts),
                results[s].wall_ms);
  }
  std::printf("\n");
}

}  // namespace

int main() {
  auto workload = galois::knowledge::SpiderLikeWorkload::Create();
  if (!workload.ok()) {
    std::fprintf(stderr, "workload: %s\n",
                 workload.status().ToString().c_str());
    return 1;
  }
  ShellState state;
  state.workload = &workload.value();
  galois::Status opened = state.Reopen();
  if (!opened.ok()) {
    std::fprintf(stderr, "open: %s\n", opened.ToString().c_str());
    return 1;
  }

  bool tty = isatty(0);
  if (tty) {
    std::printf("Galois shell — SQL over a (simulated) LLM. .help for "
                "commands.\nmodel: %s\n",
                state.profile.name.c_str());
  }
  std::string buffer;
  std::string line;
  while (true) {
    if (tty) std::printf(buffer.empty() ? "galois> " : "   ...> ");
    if (!std::getline(std::cin, line)) break;
    std::string trimmed = galois::Trim(line);
    if (trimmed.empty()) continue;
    if (buffer.empty() && trimmed[0] == '.') {
      if (!HandleCommand(&state, trimmed)) break;
      continue;
    }
    buffer += (buffer.empty() ? "" : " ") + trimmed;
    if (buffer.back() != ';') continue;  // statements end with ';'
    std::string sql = buffer.substr(0, buffer.size() - 1);
    buffer.clear();
    RunSql(&state, sql);
  }
  return 0;
}
