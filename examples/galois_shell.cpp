// Interactive Galois shell: type SQL, get relations materialised from the
// language model. Dot-commands switch models and toggle executor options.
//
//   $ build/examples/galois_shell
//   galois> SELECT name FROM country WHERE continent = 'Oceania';
//   galois> .model gpt-3
//   galois> .explain on
//   galois> .tables
//   galois> .quit
//
// Also works non-interactively: echo "SELECT ..." | galois_shell

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <string>

#include <map>

#include "common/strings.h"
#include "core/galois_executor.h"
#include "core/materialisation_cache.h"
#include "engine/executor.h"
#include "knowledge/workload.h"
#include "llm/http_llm.h"
#include "llm/model_profile.h"
#include "llm/model_router.h"
#include "llm/simulated_llm.h"
#include "planner/planner.h"
#include "sql/parser.h"

namespace {

struct ShellState {
  const galois::knowledge::SpiderLikeWorkload* workload = nullptr;
  std::unique_ptr<galois::llm::SimulatedLlm> model;
  galois::core::ExecutionOptions options;
  bool explain = false;
  bool ground_truth = false;  // run on the DB instead of the LLM
  // Cross-query table reuse: survives across statements (that is the
  // point), cleared with `.cache clear`.
  galois::core::MaterialisationCache table_cache;
  bool cache_enabled = false;
  // Named backends for .route targets: simulated profiles materialise on
  // demand, HTTP backends are added with `.backend http`. Persistent, so
  // `.backend` can show accumulated per-backend spend.
  std::map<std::string, std::unique_ptr<galois::llm::LanguageModel>>
      backends;
  // Router assembled from options.phase_models; non-null only while
  // routes exist. The executor talks to it instead of `model`.
  std::unique_ptr<galois::llm::ModelRouter> router;

  void LoadModel(const galois::llm::ModelProfile& profile) {
    model = std::make_unique<galois::llm::SimulatedLlm>(
        &workload->kb(), profile, &workload->catalog());
    RebuildRouter();
  }

  /// Returns (creating if needed) the backend registered under `name`: an
  /// existing .backend entry, or a simulated model when `name` is a
  /// profile name. nullptr when neither resolves.
  galois::llm::LanguageModel* GetOrCreateBackend(const std::string& name) {
    auto it = backends.find(name);
    if (it != backends.end()) return it->second.get();
    auto profile = galois::llm::ModelProfile::ByName(name);
    if (!profile.ok()) return nullptr;
    auto created = std::make_unique<galois::llm::SimulatedLlm>(
        &workload->kb(), profile.value(), &workload->catalog());
    galois::llm::LanguageModel* raw = created.get();
    backends[name] = std::move(created);
    return raw;
  }

  /// Reassembles the router from options.phase_models: the current
  /// `.model` stays the default backend for unrouted phases.
  galois::Status RebuildRouter() {
    if (options.phase_models.empty()) {
      router.reset();
      return galois::Status::OK();
    }
    auto rebuilt = std::make_unique<galois::llm::ModelRouter>();
    GALOIS_RETURN_IF_ERROR(rebuilt->AddBackend("default", model.get()));
    for (const auto& [phase, target] : options.phase_models) {
      (void)phase;
      if (target == "default") continue;
      galois::llm::LanguageModel* backend = GetOrCreateBackend(target);
      if (backend == nullptr) {
        return galois::Status::NotFound(
            "no backend or profile named '" + target +
            "' (add HTTP backends with .backend http <host> <port> "
            "[name])");
      }
      auto names = rebuilt->backend_names();
      if (std::find(names.begin(), names.end(), target) == names.end()) {
        GALOIS_RETURN_IF_ERROR(rebuilt->AddBackend(target, backend));
      }
    }
    GALOIS_RETURN_IF_ERROR(
        rebuilt->ConfigureRoutes(options.phase_models));
    router = std::move(rebuilt);
    return galois::Status::OK();
  }

  galois::llm::LanguageModel* ActiveModel() {
    return router != nullptr
               ? static_cast<galois::llm::LanguageModel*>(router.get())
               : model.get();
  }
};

void PrintHelp() {
  std::printf(
      "commands:\n"
      "  <SQL statement>;         execute on the current model\n"
      "  .model <flan|tk|gpt-3|chatgpt>   switch model profile\n"
      "  .explain <on|off>        print the logical plan before running\n"
      "  .truth <on|off>          run on the ground-truth DB instead\n"
      "  .pushdown <never|always|auto>    selection pushdown policy\n"
      "  .verify <on|off>         critic verification of every cell\n"
      "  .batch <on|off>          batched prompt round trips\n"
      "  .parallel <n> [chunk]    round trips in flight per phase (needs\n"
      "                           .batch on); chunk sets max_batch_size\n"
      "  .pipeline <on|off>       overlap independent phases (tables,\n"
      "                           columns, critic passes)\n"
      "  .cache <on|off|clear|stats>  cross-query materialisation cache\n"
      "  .route <phase> <backend> send a phase (key-scan, filter-check,\n"
      "                           attribute, verify/critic, freeform) to a\n"
      "                           backend: a profile name or a .backend\n"
      "                           name; `.route clear` resets, `.route`\n"
      "                           lists routes\n"
      "  .backend                 list backends with per-backend spend\n"
      "  .backend http <host> <port> [name]   register an HTTP backend\n"
      "                           (OpenAI-compatible; name defaults to\n"
      "                           'http')\n"
      "  .tables                  list catalog tables\n"
      "  .options                 show executor options\n"
      "  .help | .quit\n");
}

bool HandleCommand(ShellState* state, const std::string& line) {
  std::vector<std::string> words =
      galois::Split(line, ' ', /*trim=*/true, /*skip_empty=*/true);
  const std::string& cmd = words[0];
  auto arg = [&words]() -> std::string {
    return words.size() > 1 ? galois::ToLower(words[1]) : "";
  };
  if (cmd == ".quit" || cmd == ".exit") return false;
  if (cmd == ".help") {
    PrintHelp();
  } else if (cmd == ".model") {
    auto profile = galois::llm::ModelProfile::ByName(arg());
    if (!profile.ok()) {
      std::printf("unknown model '%s' (try flan, tk, gpt-3, chatgpt)\n",
                  arg().c_str());
    } else {
      state->LoadModel(profile.value());
      std::printf("model: %s\n", state->model->name().c_str());
    }
  } else if (cmd == ".explain") {
    state->explain = arg() != "off";
  } else if (cmd == ".truth") {
    state->ground_truth = arg() != "off";
  } else if (cmd == ".verify") {
    state->options.verify_cells = arg() != "off";
  } else if (cmd == ".batch") {
    state->options.batch_prompts = arg() != "off";
  } else if (cmd == ".parallel") {
    int n = std::atoi(arg().c_str());
    state->options.parallel_batches = n < 1 ? 1 : n;
    if (words.size() > 2) {
      int chunk = std::atoi(words[2].c_str());
      state->options.max_batch_size =
          chunk < 0 ? 0 : static_cast<size_t>(chunk);
    } else if (state->options.parallel_batches > 1 &&
               state->options.max_batch_size == 0) {
      // Whole-phase batches leave nothing to overlap; pick a sane chunk.
      state->options.max_batch_size = 8;
    }
  } else if (cmd == ".pipeline") {
    state->options.pipeline_phases = arg() != "off";
  } else if (cmd == ".cache") {
    if (arg() == "clear") {
      state->table_cache.Clear();
      std::printf("materialisation cache cleared\n");
    } else if (arg() == "stats") {
      auto stats = state->table_cache.stats();
      std::printf(
          "materialisation cache: %s, %zu entries, %lld hits / %lld "
          "lookups (%lld by subsumption), %lld insertions, %lld "
          "evictions\n",
          state->cache_enabled ? "on" : "off", state->table_cache.size(),
          static_cast<long long>(stats.hits),
          static_cast<long long>(stats.lookups),
          static_cast<long long>(stats.subsumption_hits),
          static_cast<long long>(stats.insertions),
          static_cast<long long>(stats.evictions));
    } else {
      state->cache_enabled = arg() != "off";
    }
  } else if (cmd == ".route") {
    if (words.size() == 1) {
      if (state->options.phase_models.empty()) {
        std::printf("no routes; every phase uses the default model %s\n",
                    state->model->name().c_str());
      }
      for (const auto& [phase, backend] : state->options.phase_models) {
        std::printf("  %-12s -> %s\n", phase.c_str(), backend.c_str());
      }
    } else if (arg() == "clear") {
      state->options.phase_models.clear();
      state->router.reset();
      std::printf("routes cleared\n");
    } else if (words.size() >= 3) {
      std::string phase = galois::ToLower(words[1]);
      std::string backend = words[2];
      auto saved = state->options.phase_models;
      state->options.phase_models[phase] = backend;
      galois::Status s = state->RebuildRouter();
      if (!s.ok()) {
        state->options.phase_models = std::move(saved);
        std::printf("%s\n", s.ToString().c_str());
      } else {
        std::printf("route: %s -> %s\n", phase.c_str(), backend.c_str());
      }
    } else {
      std::printf("usage: .route <phase> <backend> | .route clear\n");
    }
  } else if (cmd == ".backend") {
    if (words.size() >= 4 && arg() == "http") {
      galois::llm::HttpLlmOptions http_options;
      http_options.host = words[2];
      http_options.port = std::atoi(words[3].c_str());
      std::string name = words.size() > 4 ? words[4] : "http";
      http_options.display_name = name;
      if (http_options.port <= 0) {
        std::printf("bad port '%s'\n", words[3].c_str());
      } else if (state->backends.count(name) > 0) {
        std::printf("backend '%s' already exists\n", name.c_str());
      } else {
        state->backends[name] =
            std::make_unique<galois::llm::HttpLlm>(http_options);
        std::printf("backend %s: http://%s:%d (route phases to it with "
                    ".route <phase> %s)\n",
                    name.c_str(), http_options.host.c_str(),
                    http_options.port, name.c_str());
      }
    } else if (words.size() == 1) {
      std::printf("  %-12s %s (default)\n", "default",
                  state->model->name().c_str());
      for (const auto& [name, backend] : state->backends) {
        galois::llm::CostMeter cost = backend->cost();
        std::printf("  %-12s %s — %lld prompts, %lld batches so far\n",
                    name.c_str(), backend->name().c_str(),
                    static_cast<long long>(cost.num_prompts),
                    static_cast<long long>(cost.num_batches));
      }
    } else {
      std::printf("usage: .backend | .backend http <host> <port> [name]\n");
    }
  } else if (cmd == ".pushdown") {
    if (arg() == "always") {
      state->options.pushdown_policy =
          galois::core::PushdownPolicy::kAlways;
    } else if (arg() == "auto") {
      state->options.pushdown_policy = galois::core::PushdownPolicy::kAuto;
    } else {
      state->options.pushdown_policy =
          galois::core::PushdownPolicy::kNever;
    }
  } else if (cmd == ".tables") {
    for (const std::string& name :
         state->workload->catalog().TableNames()) {
      auto def = state->workload->catalog().GetTable(name);
      std::printf("  %-12s [%s] key=%s, %zu columns\n", name.c_str(),
                  galois::catalog::SourceKindName(
                      def.value()->default_source),
                  def.value()->key_column.c_str(),
                  def.value()->columns.size());
    }
  } else if (cmd == ".options") {
    std::printf("%s\n", state->options.ToString().c_str());
  } else {
    std::printf("unknown command %s (try .help)\n", cmd.c_str());
  }
  return true;
}

void RunSql(ShellState* state, const std::string& sql) {
  auto stmt = galois::sql::ParseSelect(sql);
  if (!stmt.ok()) {
    std::printf("%s\n", stmt.status().ToString().c_str());
    return;
  }
  if (state->explain) {
    auto plan = galois::planner::BuildLogicalPlan(
        stmt.value(), state->workload->catalog());
    if (plan.ok()) {
      galois::planner::OptimizeLlmFilters(
          plan.value().get(),
          state->options.EffectivePushdown() !=
              galois::core::PushdownPolicy::kNever);
      std::printf("%s", galois::planner::Explain(*plan.value()).c_str());
    }
  }
  if (state->ground_truth) {
    auto rd = galois::engine::ExecuteSelect(stmt.value(),
                                            state->workload->catalog());
    if (!rd.ok()) {
      std::printf("%s\n", rd.status().ToString().c_str());
      return;
    }
    std::printf("%s", rd->ToPrettyString(30).c_str());
    return;
  }
  galois::core::GaloisExecutor galois(state->ActiveModel(),
                                      &state->workload->catalog(),
                                      state->options);
  if (state->cache_enabled) {
    galois.set_materialisation_cache(&state->table_cache);
  }
  auto rm = galois.Execute(stmt.value());
  if (!rm.ok()) {
    std::printf("%s\n", rm.status().ToString().c_str());
    return;
  }
  std::printf("%s", rm->ToPrettyString(30).c_str());
  if (galois.last_table_cache_hits() > 0) {
    std::printf("(%lld prompts, %.1f s simulated, %lld/%lld tables from "
                "cache)\n",
                static_cast<long long>(galois.last_cost().num_prompts),
                galois.last_cost().simulated_latency_ms / 1000.0,
                static_cast<long long>(galois.last_table_cache_hits()),
                static_cast<long long>(galois.last_table_cache_lookups()));
  } else {
    std::printf("(%lld prompts, %.1f s simulated)\n",
                static_cast<long long>(galois.last_cost().num_prompts),
                galois.last_cost().simulated_latency_ms / 1000.0);
  }
  if (galois.last_cost().by_model.size() > 1) {
    // Routed query: show where the prompts went.
    std::printf("(");
    bool first = true;
    for (const auto& [model, usage] : galois.last_cost().by_model) {
      std::printf("%s%s: %lld", first ? "" : ", ", model.c_str(),
                  static_cast<long long>(usage.num_prompts));
      first = false;
    }
    std::printf(")\n");
  }
}

}  // namespace

int main() {
  auto workload = galois::knowledge::SpiderLikeWorkload::Create();
  if (!workload.ok()) {
    std::fprintf(stderr, "workload: %s\n",
                 workload.status().ToString().c_str());
    return 1;
  }
  ShellState state;
  state.workload = &workload.value();
  state.LoadModel(galois::llm::ModelProfile::ChatGpt());

  bool tty = isatty(0);
  if (tty) {
    std::printf("Galois shell — SQL over a (simulated) LLM. .help for "
                "commands.\nmodel: %s\n",
                state.model->name().c_str());
  }
  std::string buffer;
  std::string line;
  while (true) {
    if (tty) std::printf(buffer.empty() ? "galois> " : "   ...> ");
    if (!std::getline(std::cin, line)) break;
    std::string trimmed = galois::Trim(line);
    if (trimmed.empty()) continue;
    if (buffer.empty() && trimmed[0] == '.') {
      if (!HandleCommand(&state, trimmed)) break;
      continue;
    }
    buffer += (buffer.empty() ? "" : " ") + trimmed;
    if (buffer.back() != ';') continue;  // statements end with ';'
    std::string sql = buffer.substr(0, buffer.size() - 1);
    buffer.clear();
    RunSql(&state, sql);
  }
  return 0;
}
