// Regenerates Table 2 of the paper: cell value matches (%) between each
// method's result and the ground-truth execution R_D, on the ChatGPT
// profile, split by query class.
//
// Paper reference values (ChatGPT):
//   R_M  (SQL Queries)   : All 50, Selections 80, Aggregates 29, Joins 0
//   T_M  (NL Questions)  : All 44, Selections 71, Aggregates 20, Joins 8
//   T^C_M (NL Quest.+CoT): All 41, Selections 71, Aggregates 13, Joins 0

#include <cstdio>

#include "eval/harness.h"
#include "eval/report.h"
#include "knowledge/workload.h"
#include "llm/model_profile.h"

int main() {
  auto workload = galois::knowledge::SpiderLikeWorkload::Create();
  if (!workload.ok()) {
    std::fprintf(stderr, "workload: %s\n",
                 workload.status().ToString().c_str());
    return 1;
  }
  galois::eval::ExperimentConfig config;
  config.run_galois = true;
  config.run_nl_qa = true;
  config.run_cot_qa = true;

  auto outcomes = galois::eval::RunExperiment(
      workload.value(), galois::llm::ModelProfile::ChatGpt(), config);
  if (!outcomes.ok()) {
    std::fprintf(stderr, "run: %s\n",
                 outcomes.status().ToString().c_str());
    return 1;
  }
  std::printf("%s", galois::eval::FormatTable2(outcomes.value()).c_str());
  std::printf(
      "\nPaper reference (ChatGPT):\n"
      "  R_M   50 / 80 / 29 / 0\n"
      "  T_M   44 / 71 / 20 / 8\n"
      "  T_C_M 41 / 71 / 13 / 0\n");
  return 0;
}
