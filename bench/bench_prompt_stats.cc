// Regenerates the Section 5 in-text cost statistics: "On average, GPT-3
// takes ~20 seconds to execute a query (~110 batched prompts per query).
// Distributions for these metrics are skewed as they depend on the result
// sizes."

#include <cstdio>

#include "eval/harness.h"
#include "eval/report.h"
#include "knowledge/workload.h"
#include "llm/model_profile.h"

int main() {
  auto workload = galois::knowledge::SpiderLikeWorkload::Create();
  if (!workload.ok()) {
    std::fprintf(stderr, "workload: %s\n",
                 workload.status().ToString().c_str());
    return 1;
  }
  galois::eval::ExperimentConfig config;
  config.run_galois = true;

  auto outcomes = galois::eval::RunExperiment(
      workload.value(), galois::llm::ModelProfile::Gpt3(), config);
  if (!outcomes.ok()) {
    std::fprintf(stderr, "run: %s\n",
                 outcomes.status().ToString().c_str());
    return 1;
  }
  std::printf("%s",
              galois::eval::FormatCostStats(outcomes.value()).c_str());
  std::printf(
      "\nPaper reference: ~20 s and ~110 batched prompts per query "
      "(GPT-3), skewed distributions\n");

  // Batching ablation: same prompts, one shared round trip per operator.
  galois::eval::ExperimentConfig batched = config;
  batched.options.batch_prompts = true;
  auto batched_outcomes = galois::eval::RunExperiment(
      workload.value(), galois::llm::ModelProfile::Gpt3(), batched);
  if (batched_outcomes.ok()) {
    std::printf("\nWith CompleteBatch round trips:\n%s",
                galois::eval::FormatCostStats(batched_outcomes.value())
                    .c_str());
  }

  // Per-query breakdown to show the skew.
  std::printf("\nPer-query prompt counts (GPT-3 profile):\n");
  for (const auto& o : outcomes.value()) {
    std::printf("  q%02d [%s] prompts=%lld latency=%.1fs\n", o.query_id,
                galois::knowledge::QueryClassName(o.query_class),
                static_cast<long long>(o.galois_cost.num_prompts),
                o.galois_cost.simulated_latency_ms / 1000.0);
  }
  return 0;
}
