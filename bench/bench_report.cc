// Consolidated reproduction report: runs every experiment of the paper's
// evaluation section in one binary and prints a markdown-ish summary with
// the paper's reference numbers alongside. Useful as the single artifact
// to diff after changes ("make report").

// Pass a directory as argv[1] to additionally export CSVs
// (table1.csv, table2.csv, outcomes_<model>.csv) for plotting.

#include <cstdio>
#include <string>

#include "eval/export.h"
#include "eval/harness.h"
#include "eval/report.h"
#include "knowledge/workload.h"
#include "llm/model_profile.h"

int main(int argc, char** argv) {
  std::string csv_dir = argc > 1 ? argv[1] : "";
  auto workload = galois::knowledge::SpiderLikeWorkload::Create();
  if (!workload.ok()) {
    std::fprintf(stderr, "workload: %s\n",
                 workload.status().ToString().c_str());
    return 1;
  }
  std::printf(
      "# Galois reproduction report\n\n"
      "Workload: 46 Spider-like queries over %zu catalog tables, seed "
      "20240325.\n\n",
      workload->catalog().TableNames().size());

  // --- Table 1 across all four models -----------------------------------
  galois::eval::ExperimentConfig galois_only;
  galois_only.run_galois = true;
  std::vector<
      std::pair<std::string, std::vector<galois::eval::QueryOutcome>>>
      per_model;
  for (const galois::llm::ModelProfile& profile :
       galois::llm::ModelProfile::AllPaperModels()) {
    auto outcomes =
        galois::eval::RunExperiment(workload.value(), profile,
                                    galois_only);
    if (!outcomes.ok()) {
      std::fprintf(stderr, "%s: %s\n", profile.name.c_str(),
                   outcomes.status().ToString().c_str());
      return 1;
    }
    per_model.emplace_back(profile.name, std::move(outcomes).value());
  }
  std::printf("%s", galois::eval::FormatTable1(per_model).c_str());
  std::printf("  (paper: Flan -47.4, TK -43.7, GPT-3 +1.0, ChatGPT "
              "-19.5)\n\n");
  if (!csv_dir.empty()) {
    (void)galois::eval::WriteFile(csv_dir + "/table1.csv",
                                  galois::eval::Table1Csv(per_model));
    for (const auto& [name, outcomes] : per_model) {
      std::string file = csv_dir + "/outcomes_" + name + ".csv";
      (void)galois::eval::WriteFile(
          file, galois::eval::OutcomesToCsv(outcomes));
    }
  }

  // --- Table 2 on ChatGPT with baselines ---------------------------------
  galois::eval::ExperimentConfig full;
  full.run_galois = true;
  full.run_nl_qa = true;
  full.run_cot_qa = true;
  auto chatgpt = galois::eval::RunExperiment(
      workload.value(), galois::llm::ModelProfile::ChatGpt(), full);
  if (!chatgpt.ok()) {
    std::fprintf(stderr, "chatgpt: %s\n",
                 chatgpt.status().ToString().c_str());
    return 1;
  }
  std::printf("%s", galois::eval::FormatTable2(chatgpt.value()).c_str());
  std::printf(
      "  (paper: R_M 50/80/29/0, T_M 44/71/20/8, T_C_M 41/71/13/0)\n\n");
  if (!csv_dir.empty()) {
    (void)galois::eval::WriteFile(
        csv_dir + "/table2.csv",
        galois::eval::Table2Csv(chatgpt.value()));
  }

  // --- Section 5 cost statistics on GPT-3 --------------------------------
  auto gpt3 = galois::eval::RunExperiment(
      workload.value(), galois::llm::ModelProfile::Gpt3(), galois_only);
  if (gpt3.ok()) {
    std::printf("%s", galois::eval::FormatCostStats(gpt3.value()).c_str());
    std::printf("  (paper: ~110 batched prompts, ~20 s per query)\n\n");
  }
  galois::eval::ExperimentConfig batched_cfg = galois_only;
  batched_cfg.options.batch_prompts = true;
  auto gpt3_batched = galois::eval::RunExperiment(
      workload.value(), galois::llm::ModelProfile::Gpt3(), batched_cfg);
  if (gpt3_batched.ok()) {
    std::printf("Same workload with batched dispatch:\n%s\n",
                galois::eval::FormatCostStats(gpt3_batched.value())
                    .c_str());
  }

  // --- quick shape checks -------------------------------------------------
  using galois::eval::Method;
  using galois::eval::Table2Average;
  using galois::knowledge::QueryClass;
  const auto& o = chatgpt.value();
  struct Check {
    const char* label;
    bool pass;
  };
  const Check checks[] = {
      {"Galois beats NL QA overall",
       Table2Average(o, Method::kGalois, std::nullopt) >
           Table2Average(o, Method::kNlQa, std::nullopt)},
      {"NL QA >= CoT overall",
       Table2Average(o, Method::kNlQa, std::nullopt) >=
           Table2Average(o, Method::kCotQa, std::nullopt)},
      {"selections easiest for Galois",
       Table2Average(o, Method::kGalois, QueryClass::kSelection) >
           Table2Average(o, Method::kGalois, QueryClass::kAggregate)},
      {"joins collapse for Galois",
       Table2Average(o, Method::kGalois, QueryClass::kJoin) < 10.0},
      {"QA beats Galois on joins (paper's inversion)",
       Table2Average(o, Method::kNlQa, QueryClass::kJoin) >
           Table2Average(o, Method::kGalois, QueryClass::kJoin)},
  };
  std::printf("Shape checks:\n");
  bool all_pass = true;
  for (const Check& c : checks) {
    std::printf("  [%s] %s\n", c.pass ? "ok" : "FAIL", c.label);
    all_pass = all_pass && c.pass;
  }
  return all_pass ? 0 : 2;
}
