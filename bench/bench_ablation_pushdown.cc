// Ablation for the Section 6 query-optimization discussion: pushing a
// selection into the leaf scan prompt ("get names of cities with > 1M
// population") removes the per-key filter prompts, but merged prompts
// answer less accurately. This bench quantifies the prompt savings and
// the accuracy cost over the selection queries of the workload.

#include <cstdio>

#include "core/galois_executor.h"
#include "engine/executor.h"
#include "eval/metrics.h"
#include "knowledge/workload.h"
#include "llm/simulated_llm.h"

int main() {
  auto workload = galois::knowledge::SpiderLikeWorkload::Create();
  if (!workload.ok()) {
    std::fprintf(stderr, "workload: %s\n",
                 workload.status().ToString().c_str());
    return 1;
  }

  struct Config {
    const char* label;
    bool pushdown;
    bool batch;
    size_t max_batch;  // 0 = whole phase as one batch
    int parallel;      // batch round trips in flight (needs batch)
  };
  const Config configs[] = {
      {"per-key filter prompts", false, false, 0, 1},
      {"per-key, batched", false, true, 0, 1},
      {"per-key, batched x8", false, true, 8, 1},
      {"per-key, batched x8, 4-way", false, true, 8, 4},
      {"selection pushed into scan", true, false, 0, 1},
      {"pushed + batched", true, true, 0, 1}};

  std::printf(
      "Pushdown ablation (ChatGPT profile, selection queries only)\n");
  std::printf("  %-28s %10s %10s %12s %12s %10s\n", "strategy", "prompts",
              "batches", "cell match", "cardinality", "sim. s");
  for (const Config& config : configs) {
    galois::llm::SimulatedLlm model(&workload->kb(),
                                    galois::llm::ModelProfile::ChatGpt(),
                                    &workload->catalog());
    galois::core::ExecutionOptions options;
    options.pushdown_policy = config.pushdown
                                  ? galois::core::PushdownPolicy::kAlways
                                  : galois::core::PushdownPolicy::kNever;
    options.batch_prompts = config.batch;
    options.max_batch_size = config.max_batch;
    options.parallel_batches = config.parallel;
    galois::core::GaloisExecutor galois(&model, &workload->catalog(),
                                        options);
    double total_prompts = 0.0;
    double total_batches = 0.0;
    double total_latency_ms = 0.0;
    double total_match = 0.0;
    double total_card = 0.0;
    int count = 0;
    for (const galois::knowledge::QuerySpec& q : workload->queries()) {
      if (q.query_class != galois::knowledge::QueryClass::kSelection) {
        continue;
      }
      auto rd = galois::engine::ExecuteSql(q.sql, workload->catalog());
      auto rm = galois.RunSql(q.sql);
      if (!rd.ok() || !rm.ok()) {
        std::fprintf(stderr, "q%d failed\n", q.id);
        return 1;
      }
      total_prompts += static_cast<double>(rm->cost.num_prompts);
      total_batches += static_cast<double>(rm->cost.num_batches);
      total_latency_ms += rm->cost.simulated_latency_ms;
      total_match += galois::eval::MatchCells(*rd, rm->relation).Percent();
      total_card += galois::eval::CardinalityDiffPercent(
          rd->NumRows(), rm->relation.NumRows());
      ++count;
    }
    std::printf("  %-28s %10.0f %10.0f %11.0f%% %+11.1f%% %10.1f\n",
                config.label, total_prompts / count,
                total_batches / count, total_match / count,
                total_card / count, total_latency_ms / count / 1000.0);
  }
  std::printf(
      "\nExpected shape (Section 6): pushdown cuts prompts by roughly the "
      "number of\nscanned keys per query, at some accuracy cost because "
      "merged prompts are\n\"complex questions that have lower accuracy "
      "than simple ones\".\nBatched dispatch keeps prompts and answers "
      "identical while collapsing the\nper-prompt round-trip overhead "
      "into one per batch. The x8 rows split phases\ninto chunks of 8 "
      "(more batches, each billing its own round-trip overhead);\nthe "
      "4-way row additionally overlaps up to 4 of those round trips and "
      "is\nidentical to its x8 counterpart in every reported statistic — "
      "concurrency\nmoves wall-clock time, never answers or billing.\n");
  return 0;
}
