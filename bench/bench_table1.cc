// Regenerates Table 1 of the paper: average cardinality difference of
// Galois's output relations w.r.t. the ground truth |R_D|, for all four
// model profiles over the 46 Spider-like queries.
//
// Paper reference values: Flan -47.4, TK -43.7, GPT-3 +1.0, ChatGPT -19.5.

#include <cstdio>

#include "eval/harness.h"
#include "eval/report.h"
#include "knowledge/workload.h"
#include "llm/model_profile.h"

int main() {
  auto workload = galois::knowledge::SpiderLikeWorkload::Create();
  if (!workload.ok()) {
    std::fprintf(stderr, "workload: %s\n",
                 workload.status().ToString().c_str());
    return 1;
  }
  galois::eval::ExperimentConfig config;
  config.run_galois = true;

  std::vector<
      std::pair<std::string, std::vector<galois::eval::QueryOutcome>>>
      per_model;
  for (const galois::llm::ModelProfile& profile :
       galois::llm::ModelProfile::AllPaperModels()) {
    auto outcomes =
        galois::eval::RunExperiment(workload.value(), profile, config);
    if (!outcomes.ok()) {
      std::fprintf(stderr, "%s: %s\n", profile.name.c_str(),
                   outcomes.status().ToString().c_str());
      return 1;
    }
    per_model.emplace_back(profile.name, std::move(outcomes).value());
  }
  std::printf("%s", galois::eval::FormatTable1(per_model).c_str());
  std::printf(
      "\nPaper reference: Flan -47.4, TK -43.7, GPT-3 +1.0, ChatGPT "
      "-19.5\n");
  return 0;
}
