// Google-benchmark microbenchmarks for the substrate components: SQL
// parsing, expression evaluation, classic operators, cleaning, the
// simulated LLM, and the full Galois pipeline. These guard the
// performance of the pieces the experiment harness leans on.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "api/database.h"
#include "clean/normalize.h"
#include "cluster/cluster_coordinator.h"
#include "core/galois_executor.h"
#include "core/llm_operators.h"
#include "core/materialisation_cache.h"
#include "engine/executor.h"
#include "knowledge/workload.h"
#include "llm/http_llm.h"
#include "llm/model_router.h"
#include "llm/prompt_cache.h"
#include "llm/prompt_templates.h"
#include "llm/simulated_llm.h"
#include "net/galois_server.h"
#include "sql/parser.h"
#include "tests/fake_llm_server.h"

namespace {

const galois::knowledge::SpiderLikeWorkload& Workload() {
  static const auto* w = []() {
    auto r = galois::knowledge::SpiderLikeWorkload::Create();
    return new galois::knowledge::SpiderLikeWorkload(
        std::move(r).value());
  }();
  return *w;
}

void BM_ParseSimpleQuery(benchmark::State& state) {
  const std::string sql =
      "SELECT name FROM country WHERE continent = 'Europe'";
  for (auto _ : state) {
    benchmark::DoNotOptimize(galois::sql::ParseSelect(sql));
  }
}
BENCHMARK(BM_ParseSimpleQuery);

void BM_ParseComplexQuery(benchmark::State& state) {
  const std::string sql =
      "SELECT co.continent, COUNT(*), AVG(ci.population) "
      "FROM city ci, country co WHERE ci.country = co.name AND "
      "ci.population BETWEEN 100000 AND 10000000 GROUP BY co.continent "
      "HAVING COUNT(*) > 2 ORDER BY COUNT(*) DESC LIMIT 10";
  for (auto _ : state) {
    benchmark::DoNotOptimize(galois::sql::ParseSelect(sql));
  }
}
BENCHMARK(BM_ParseComplexQuery);

void BM_GroundTruthSelection(benchmark::State& state) {
  const std::string sql =
      "SELECT name FROM country WHERE continent = 'Europe'";
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        galois::engine::ExecuteSql(sql, Workload().catalog()));
  }
}
BENCHMARK(BM_GroundTruthSelection);

void BM_GroundTruthJoinAggregate(benchmark::State& state) {
  const std::string sql =
      "SELECT co.continent, COUNT(*) FROM city ci, country co "
      "WHERE ci.country = co.name GROUP BY co.continent";
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        galois::engine::ExecuteSql(sql, Workload().catalog()));
  }
}
BENCHMARK(BM_GroundTruthJoinAggregate);

void BM_CleanNumber(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(galois::clean::ParseNumber("1.2 million"));
    benchmark::DoNotOptimize(galois::clean::ParseNumber("3,450,000"));
    benchmark::DoNotOptimize(galois::clean::ParseNumber("about 42k"));
  }
}
BENCHMARK(BM_CleanNumber);

void BM_CleanDate(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(galois::clean::ParseDate("August 4, 1962"));
    benchmark::DoNotOptimize(galois::clean::ParseDate("04/08/1962"));
  }
}
BENCHMARK(BM_CleanDate);

void BM_SimulatedAttributePrompt(benchmark::State& state) {
  galois::llm::SimulatedLlm model(&Workload().kb(),
                                  galois::llm::ModelProfile::ChatGpt(),
                                  &Workload().catalog());
  galois::llm::AttributeGetIntent intent;
  intent.concept_name = "country";
  intent.key = "Italy";
  intent.attribute = "population";
  galois::llm::Prompt prompt = galois::llm::BuildAttributePrompt(intent);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.Complete(prompt));
  }
}
BENCHMARK(BM_SimulatedAttributePrompt);

void BM_GaloisSelectionQuery(benchmark::State& state) {
  galois::llm::SimulatedLlm model(&Workload().kb(),
                                  galois::llm::ModelProfile::ChatGpt(),
                                  &Workload().catalog());
  galois::core::GaloisExecutor galois(&model, &Workload().catalog());
  const std::string sql =
      "SELECT name FROM country WHERE continent = 'Europe'";
  for (auto _ : state) {
    benchmark::DoNotOptimize(galois.ExecuteSql(sql));
  }
}
BENCHMARK(BM_GaloisSelectionQuery);

void BM_GaloisSelectionQueryBatched(benchmark::State& state) {
  // range(0) is max_batch_size: 0 = one batch per retrieval phase.
  galois::llm::SimulatedLlm model(&Workload().kb(),
                                  galois::llm::ModelProfile::ChatGpt(),
                                  &Workload().catalog());
  galois::core::ExecutionOptions options;
  options.batch_prompts = true;
  options.max_batch_size = static_cast<size_t>(state.range(0));
  galois::core::GaloisExecutor galois(&model, &Workload().catalog(),
                                      options);
  const std::string sql =
      "SELECT name FROM country WHERE continent = 'Europe'";
  galois::Result<galois::core::QueryOutput> last = galois.RunSql(sql);
  for (auto _ : state) {
    last = galois.RunSql(sql);
    benchmark::DoNotOptimize(last);
  }
  state.counters["batches"] =
      static_cast<double>(last->cost.num_batches);
  state.counters["prompts"] =
      static_cast<double>(last->cost.num_prompts);
}
BENCHMARK(BM_GaloisSelectionQueryBatched)->Arg(0)->Arg(8)->Arg(32);

void BM_GaloisConcurrentDispatch(benchmark::State& state) {
  // range(0) is parallel_batches. The simulated model sleeps a fixed 5 ms
  // of wall time per round trip, so overlapping round trips shows up
  // directly in real time: at parallel_batches=4 each multi-chunk phase
  // takes ~ceil(chunks / 4) round trips instead of `chunks`. Answers and
  // the CostMeter (num_batches, cache_hits, tokens, simulated latency)
  // are identical across all arguments — only wall clock moves.
  galois::llm::SimulatedLlm model(&Workload().kb(),
                                  galois::llm::ModelProfile::ChatGpt(),
                                  &Workload().catalog());
  model.set_wall_latency_ms(5.0);
  galois::core::ExecutionOptions options;
  options.batch_prompts = true;
  options.max_batch_size = 4;
  options.parallel_batches = static_cast<int>(state.range(0));
  galois::core::GaloisExecutor galois(&model, &Workload().catalog(),
                                      options);
  const std::string sql =
      "SELECT name, capital, population FROM country";
  galois::Result<galois::core::QueryOutput> last = galois.RunSql(sql);
  for (auto _ : state) {
    last = galois.RunSql(sql);
    benchmark::DoNotOptimize(last);
  }
  state.counters["batches"] =
      static_cast<double>(last->cost.num_batches);
  state.counters["prompts"] =
      static_cast<double>(last->cost.num_prompts);
}
BENCHMARK(BM_GaloisConcurrentDispatch)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

void BM_GaloisPipelinedJoin(benchmark::State& state) {
  // range(0) toggles pipeline_phases at identical dispatch settings
  // (batch, max_batch_size=4, parallel_batches=4): Arg(0) is the PR 2
  // sequential-phase ladder, Arg(1) the pipelined plan. The query joins
  // two LLM tables needing three non-key columns each, with critic
  // verification on — per table: scan, scan-verify, then 3 × (attribute
  // + verify) phases. The ladder pays every phase's round trips in
  // sequence; the pipeline overlaps the two tables and, within each, the
  // three column chains, multiplying the intra-phase parallel_batches
  // speedup by the inter-phase width. prompts/batches/cache_hits are
  // identical across both rows — only wall time moves.
  galois::llm::SimulatedLlm model(&Workload().kb(),
                                  galois::llm::ModelProfile::ChatGpt(),
                                  &Workload().catalog());
  model.set_wall_latency_ms(5.0);
  galois::core::ExecutionOptions options;
  options.batch_prompts = true;
  options.max_batch_size = 4;
  options.parallel_batches = 4;
  options.verify_cells = true;
  options.pipeline_phases = state.range(0) != 0;
  galois::core::GaloisExecutor galois(&model, &Workload().catalog(),
                                      options);
  const std::string sql =
      "SELECT ci.name, ci.population, ci.mayor, ci.country, "
      "co.capital, co.population, co.continent "
      "FROM city ci, country co WHERE ci.country = co.name";
  galois::Result<galois::core::QueryOutput> last = galois.RunSql(sql);
  for (auto _ : state) {
    last = galois.RunSql(sql);
    benchmark::DoNotOptimize(last);
  }
  state.counters["batches"] =
      static_cast<double>(last->cost.num_batches);
  state.counters["prompts"] =
      static_cast<double>(last->cost.num_prompts);
  state.counters["cache_hits"] =
      static_cast<double>(last->cost.cache_hits);
}
BENCHMARK(BM_GaloisPipelinedJoin)
    ->Arg(0)
    ->Arg(1)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

void BM_GaloisMaterialisationCacheWarm(benchmark::State& state) {
  // Warm rerun of the pipelined join through the cross-query
  // MaterialisationCache: both tables are served by fingerprint with
  // zero LLM round trips per iteration (table_hits counts 2 per query).
  galois::llm::SimulatedLlm model(&Workload().kb(),
                                  galois::llm::ModelProfile::ChatGpt(),
                                  &Workload().catalog());
  model.set_wall_latency_ms(5.0);
  galois::core::ExecutionOptions options;
  options.batch_prompts = true;
  options.max_batch_size = 4;
  options.parallel_batches = 4;
  options.verify_cells = true;
  options.pipeline_phases = true;
  galois::core::GaloisExecutor galois(&model, &Workload().catalog(),
                                      options);
  galois::core::MaterialisationCache table_cache;
  galois.set_materialisation_cache(&table_cache);
  const std::string sql =
      "SELECT ci.name, ci.population, ci.mayor, ci.country, "
      "co.capital, co.population, co.continent "
      "FROM city ci, country co WHERE ci.country = co.name";
  galois::Result<galois::core::QueryOutput> last = galois.RunSql(sql);
  benchmark::DoNotOptimize(last);  // cold fill
  for (auto _ : state) {
    last = galois.RunSql(sql);
    benchmark::DoNotOptimize(last);
  }
  state.counters["prompts_per_iter"] =
      static_cast<double>(last->cost.num_prompts);
  state.counters["table_hits"] =
      static_cast<double>(last->table_cache_hits);
}
BENCHMARK(BM_GaloisMaterialisationCacheWarm)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

void BM_GaloisBatchedWarmCache(benchmark::State& state) {
  // Warm rerun through the batch-aware PromptCache: every batch is served
  // from cache without an inner round trip.
  galois::llm::SimulatedLlm inner(&Workload().kb(),
                                  galois::llm::ModelProfile::ChatGpt(),
                                  &Workload().catalog());
  galois::llm::PromptCache cache(&inner);
  galois::core::ExecutionOptions options;
  options.batch_prompts = true;
  galois::core::GaloisExecutor galois(&cache, &Workload().catalog(),
                                      options);
  const std::string sql =
      "SELECT name, capital FROM country WHERE continent = 'Europe'";
  galois::Result<galois::core::QueryOutput> last = galois.RunSql(sql);
  benchmark::DoNotOptimize(last);  // cold fill
  for (auto _ : state) {
    last = galois.RunSql(sql);
    benchmark::DoNotOptimize(last);
  }
  state.counters["cache_hits"] =
      static_cast<double>(last->cost.cache_hits);
}
BENCHMARK(BM_GaloisBatchedWarmCache);

void BM_StoreJournalAppend(benchmark::State& state) {
  // Cost of journaling one materialisation: frame encode + CRC + append
  // (kNone durability, so no fsync dominates the measurement). This is
  // the overhead a cache insert pays on the query path.
  const std::string dir = "/tmp/galois_bench_store_append";
  std::remove((dir + "/galois.store").c_str());
  galois::store::StoreOptions options;
  options.path = dir;
  options.durability = galois::store::Durability::kNone;
  options.background_vacuum = false;
  auto store = galois::store::ResultStore::Open(options);
  if (!store.ok()) {
    state.SkipWithError("store open failed");
    return;
  }
  std::vector<galois::Tuple> rows;
  for (int r = 0; r < 40; ++r) {
    galois::Tuple row;
    row.push_back(galois::Value::String("key" + std::to_string(r)));
    row.push_back(galois::Value::Int(1000000 + r));
    row.push_back(galois::Value::Double(0.5 + r));
    rows.push_back(std::move(row));
  }
  const std::vector<std::string> columns = {"population", "gdp"};
  int64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize((*store)->PutMaterialisation(
        "fp" + std::to_string(i++ % 1024), columns, rows));
  }
  auto stats = (*store)->stats();
  state.counters["bytes_per_append"] = static_cast<double>(
      stats.appends > 0 ? stats.append_bytes / stats.appends : 0);
}
BENCHMARK(BM_StoreJournalAppend);

void BM_StoreWarmOpen(benchmark::State& state) {
  // Cold-process warm start: Open (recovery scan of a populated journal)
  // plus the full ForEach feed of every recovered entry — the once-per-
  // process price of never re-billing the workload.
  const std::string dir = "/tmp/galois_bench_store_open";
  std::remove((dir + "/galois.store").c_str());
  galois::store::StoreOptions options;
  options.path = dir;
  options.background_vacuum = false;
  {
    auto seed_store = galois::store::ResultStore::Open(options);
    if (!seed_store.ok()) {
      state.SkipWithError("store open failed");
      return;
    }
    std::vector<galois::Tuple> rows;
    for (int r = 0; r < 40; ++r) {
      galois::Tuple row;
      row.push_back(galois::Value::String("key" + std::to_string(r)));
      row.push_back(galois::Value::Int(1000000 + r));
      row.push_back(galois::Value::Double(0.5 + r));
      rows.push_back(std::move(row));
    }
    const std::vector<std::string> columns = {"population", "gdp"};
    for (int i = 0; i < 128; ++i) {
      (void)(*seed_store)
          ->PutMaterialisation("fp" + std::to_string(i), columns, rows);
      (void)(*seed_store)
          ->PutPrompt("GPT-3.5-turbo", "prompt " + std::to_string(i),
                      "completion " + std::to_string(i));
    }
  }
  int64_t recovered = 0;
  for (auto _ : state) {
    auto store = galois::store::ResultStore::Open(options);
    if (!store.ok()) {
      state.SkipWithError("reopen failed");
      return;
    }
    recovered = 0;
    (*store)->ForEachMaterialisation(
        [&recovered](const std::string&, const std::string&,
                     const std::string&, const std::vector<std::string>&,
                     const std::vector<galois::Tuple>&) { ++recovered; });
    (*store)->ForEachPrompt([&recovered](const std::string&,
                                         const std::string&,
                                         const std::string&) {
      ++recovered;
    });
    benchmark::DoNotOptimize(store);
  }
  state.counters["entries"] = static_cast<double>(recovered);
}
BENCHMARK(BM_StoreWarmOpen)->Unit(benchmark::kMillisecond);

void BM_GaloisJoinQuery(benchmark::State& state) {
  galois::llm::SimulatedLlm model(&Workload().kb(),
                                  galois::llm::ModelProfile::ChatGpt(),
                                  &Workload().catalog());
  galois::core::GaloisExecutor galois(&model, &Workload().catalog());
  const std::string sql =
      "SELECT ci.name, co.continent FROM city ci, country co "
      "WHERE ci.country = co.name";
  for (auto _ : state) {
    benchmark::DoNotOptimize(galois.ExecuteSql(sql));
  }
}
BENCHMARK(BM_GaloisJoinQuery);

void BM_WorkloadGeneration(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        galois::knowledge::SpiderLikeWorkload::Create());
  }
}
BENCHMARK(BM_WorkloadGeneration);

// --- multi-backend transport (PR 4) ----------------------------------------

// Pure routing overhead: the ModelRouter in front of a SimulatedLlm adds
// one intent dispatch + map lookup per prompt — this pins the price of
// leaving the router in the stack even for single-backend runs.
void BM_RouterDispatchOverhead(benchmark::State& state) {
  galois::llm::SimulatedLlm model(&Workload().kb(),
                                  galois::llm::ModelProfile::ChatGpt(),
                                  &Workload().catalog());
  galois::llm::ModelRouter router;
  if (!router.AddBackend("chatgpt", &model).ok()) {
    state.SkipWithError("router setup failed");
    return;
  }
  galois::llm::AttributeGetIntent intent;
  intent.concept_name = "country";
  intent.key = "Italy";
  intent.attribute = "capital";
  intent.attribute_description = "capital city";
  galois::llm::Prompt prompt = galois::llm::BuildAttributePrompt(intent);
  for (auto _ : state) {
    benchmark::DoNotOptimize(router.Complete(prompt));
  }
}
BENCHMARK(BM_RouterDispatchOverhead);

// Real loopback HTTP round trips through the full wire path (JSON
// encode, socket, FakeLlmServer, JSON decode) — batched, at several
// concurrency levels. Comparing against BM_GaloisConcurrentDispatch
// shows what the physical transport costs over the in-process model.
void BM_HttpLoopbackBatchedQuery(benchmark::State& state) {
  galois::llm::SimulatedLlm backing(&Workload().kb(),
                                    galois::llm::ModelProfile::ChatGpt(),
                                    &Workload().catalog());
  galois::tests::FakeLlmServer server(&backing);
  if (!server.Start().ok()) {
    state.SkipWithError("fake server failed to start");
    return;
  }
  galois::llm::HttpLlm http(server.ClientOptions());
  galois::core::ExecutionOptions options;
  options.batch_prompts = true;
  options.max_batch_size = 8;
  options.parallel_batches = static_cast<int>(state.range(0));
  galois::core::GaloisExecutor galois(&http, &Workload().catalog(),
                                      options);
  const std::string sql =
      "SELECT name, capital, population FROM country "
      "WHERE continent = 'Europe'";
  galois::Result<galois::core::QueryOutput> last = galois.RunSql(sql);
  for (auto _ : state) {
    last = galois.RunSql(sql);
    benchmark::DoNotOptimize(last);
  }
  state.counters["prompts"] =
      static_cast<double>(last->cost.num_prompts);
  state.counters["batches"] =
      static_cast<double>(last->cost.num_batches);
}
BENCHMARK(BM_HttpLoopbackBatchedQuery)
    ->Arg(1)
    ->Arg(4)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

// --- Database/Session façade (PR 5) ----------------------------------------

// Throughput scaling of concurrent sessions against ONE galois::Database
// over the loopback HTTP backend: range(0) sessions each run the same
// query per iteration via QueryAsync, so an iteration completes
// range(0) queries — items_per_second reports queries/sec. Per-query
// round trips ride real sockets through the FakeLlmServer; scaling
// beyond 1 shows the façade's whole-stack concurrency (phase pool,
// batch scheduler, shared transport) rather than any single layer's.
void BM_ConcurrentSessions(benchmark::State& state) {
  static galois::llm::SimulatedLlm* backing =
      new galois::llm::SimulatedLlm(&Workload().kb(),
                                    galois::llm::ModelProfile::ChatGpt(),
                                    &Workload().catalog());
  static galois::tests::FakeLlmServer* server = [] {
    auto* s = new galois::tests::FakeLlmServer(backing);
    if (!s->Start().ok()) {
      delete s;
      s = nullptr;
    }
    return s;
  }();
  if (server == nullptr) {
    state.SkipWithError("fake server failed to start");
    return;
  }
  galois::DatabaseOptions options;
  options.workload = &Workload();
  galois::BackendSpec http;
  http.name = "http";
  http.http = server->ClientOptions();
  options.backends.push_back(std::move(http));
  options.execution.batch_prompts = true;
  options.execution.max_batch_size = 8;
  options.execution.parallel_batches = 2;
  options.execution.pipeline_phases = true;
  auto db = galois::Database::Open(std::move(options));
  if (!db.ok()) {
    state.SkipWithError("database open failed");
    return;
  }
  const int num_sessions = static_cast<int>(state.range(0));
  std::vector<galois::Session> sessions;
  for (int s = 0; s < num_sessions; ++s) {
    sessions.push_back((*db)->CreateSession());
  }
  const std::string sql =
      "SELECT name, capital, population FROM country "
      "WHERE continent = 'Europe'";
  int64_t prompts_per_query = 0;
  for (auto _ : state) {
    std::vector<galois::AsyncQuery> in_flight;
    in_flight.reserve(sessions.size());
    for (galois::Session& session : sessions) {
      in_flight.push_back(session.QueryAsync(sql));
    }
    for (galois::AsyncQuery& pending : in_flight) {
      auto result = pending.Join();
      if (!result.ok()) {
        state.SkipWithError(result.status().ToString().c_str());
        return;
      }
      prompts_per_query = result->cost.num_prompts;
    }
  }
  state.SetItemsProcessed(state.iterations() * num_sessions);
  state.counters["prompts_per_query"] =
      static_cast<double>(prompts_per_query);
}
BENCHMARK(BM_ConcurrentSessions)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

void BM_LimitBoundedKeyScan(benchmark::State& state) {
  // range(0) is the LIMIT (0 = unbounded). The planner proves a bare
  // `SELECT key FROM t LIMIT n` needs only the first n scanned keys and
  // annotates the scan with a paging bound, so the LIMIT arm must buy
  // strictly fewer pages than the unbounded arm on the same ~50-key
  // scan. The "pages" counter makes the saving diffable across PRs.
  galois::llm::ModelProfile profile =
      galois::llm::ModelProfile::ChatGpt();
  profile.coverage_floor = 1.0;  // full coverage: the scan pages through
  profile.coverage_gain = 0.0;   // every city in the world (~50 keys)
  profile.paging_fatigue = 0.0;
  profile.hallucinated_key_rate = 0.0;
  profile.page_size = 5;
  galois::llm::SimulatedLlm model(&Workload().kb(), profile,
                                  &Workload().catalog());
  galois::core::GaloisExecutor galois(&model, &Workload().catalog());
  const int64_t limit = state.range(0);
  const std::string sql =
      limit > 0
          ? "SELECT name FROM city LIMIT " + std::to_string(limit)
          : std::string("SELECT name FROM city");
  galois::Result<galois::core::QueryOutput> last = galois.RunSql(sql);
  for (auto _ : state) {
    last = galois.RunSql(sql);
    benchmark::DoNotOptimize(last);
  }
  // A key-only scan issues exactly one prompt per page.
  state.counters["pages"] = static_cast<double>(last->cost.num_prompts);
  state.counters["rows"] =
      static_cast<double>(last->relation.NumRows());
}
BENCHMARK(BM_LimitBoundedKeyScan)->Arg(0)->Arg(5);

void BM_SubsumptionWarmOverlap(benchmark::State& state) {
  // Warm rerun of an overlapping-predicate workload: the widest filter
  // is materialised once (cold fill), then every narrower variant is
  // served by predicate subsumption — zero LLM round trips per
  // iteration, only the in-memory residual re-check. This is the cache
  // redesign's headline saving; prompts_per_iter must stay 0.
  galois::llm::ModelProfile profile = galois::llm::ModelProfile::ChatGpt();
  profile.coverage_floor = 1.0;
  profile.coverage_gain = 0.0;
  profile.paging_fatigue = 0.0;
  profile.hallucinated_key_rate = 0.0;
  profile.page_size = 5;
  galois::llm::SimulatedLlm model(&Workload().kb(), profile,
                                  &Workload().catalog());
  model.set_wall_latency_ms(5.0);
  galois::core::GaloisExecutor galois(&model, &Workload().catalog());
  galois::core::MaterialisationCache table_cache;
  galois.set_materialisation_cache(&table_cache);
  const std::vector<std::string> narrower = {
      "SELECT name, population FROM country WHERE population > 50000000",
      "SELECT name, population FROM country WHERE population >= 100000000",
      "SELECT name, population FROM country "
      "WHERE population > 50000000 AND population < 200000000",
  };
  galois::Result<galois::core::QueryOutput> last = galois.RunSql(
      "SELECT name, population FROM country WHERE population > 1000000");
  benchmark::DoNotOptimize(last);  // cold fill of the widest entry
  int64_t prompts = 0;
  int64_t subsumed = 0;
  for (auto _ : state) {
    for (const std::string& sql : narrower) {
      last = galois.RunSql(sql);
      benchmark::DoNotOptimize(last);
      prompts += last->cost.num_prompts;
      subsumed += last->table_cache_subsumption_hits;
    }
  }
  state.counters["prompts_per_iter"] =
      static_cast<double>(prompts) / static_cast<double>(state.iterations());
  state.counters["subsumption_hits"] =
      static_cast<double>(subsumed) / static_cast<double>(state.iterations());
}
BENCHMARK(BM_SubsumptionWarmOverlap)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

void BM_PrefetchedKeyScan(benchmark::State& state) {
  // range(0) is prefetch_pages. Same cap-terminated scan both arms —
  // identical pages bought and round trips billed — but the speculative
  // arm overlaps page latency (5 ms per round trip) instead of paying it
  // serially, so its wall clock must drop while "pages" stays flat.
  galois::llm::ModelProfile profile = galois::llm::ModelProfile::ChatGpt();
  profile.coverage_floor = 1.0;
  profile.coverage_gain = 0.0;
  profile.paging_fatigue = 0.0;
  profile.hallucinated_key_rate = 0.0;
  profile.page_size = 5;
  galois::llm::SimulatedLlm model(&Workload().kb(), profile,
                                  &Workload().catalog());
  model.set_wall_latency_ms(5.0);
  galois::core::ExecutionOptions options;
  options.max_scan_pages = 6;
  options.prefetch_pages = static_cast<int>(state.range(0));
  const auto& def = *Workload().catalog().GetTable("city").value();
  galois::core::KeyScanStats stats;
  for (auto _ : state) {
    auto keys = galois::core::LlmKeyScan(&model, def, options,
                                         std::nullopt, &stats);
    benchmark::DoNotOptimize(keys);
  }
  state.counters["pages"] = static_cast<double>(stats.pages);
  state.counters["prefetched"] = static_cast<double>(stats.prefetched);
}
BENCHMARK(BM_PrefetchedKeyScan)
    ->Arg(0)
    ->Arg(2)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

void BM_ClusterScatterGather(benchmark::State& state) {
  // range(0) is the node count. Full loopback scatter-gather: N galoisd
  // servers plus a cluster-enabled coordinator Database, replaying a
  // two-table join whose tables land on different nodes. Caches are off
  // so every iteration pays real materialisation work; the 1-vs-2-node
  // rows show what table-affinity parallelism buys (and what the
  // dispatch + merge path costs on top of the facade).
  const int node_count = static_cast<int>(state.range(0));
  struct BenchNode {
    std::unique_ptr<galois::Database> db;
    std::unique_ptr<galois::net::GaloisServer> server;
  };
  std::vector<BenchNode> nodes;
  galois::cluster::ClusterOptions copts;
  for (int n = 0; n < node_count; ++n) {
    galois::DatabaseOptions o;
    o.workload = &Workload();
    o.enable_materialisation_cache = false;
    auto db = galois::Database::Open(std::move(o));
    if (!db.ok()) {
      state.SkipWithError(db.status().ToString().c_str());
      return;
    }
    BenchNode node;
    node.db = std::move(db).value();
    node.server = std::make_unique<galois::net::GaloisServer>(
        node.db.get(), galois::net::ServerOptions());
    if (galois::Status started = node.server->Start(); !started.ok()) {
      state.SkipWithError(started.ToString().c_str());
      return;
    }
    copts.nodes.push_back({"127.0.0.1", node.server->port()});
    nodes.push_back(std::move(node));
  }
  galois::DatabaseOptions coord_options;
  coord_options.workload = &Workload();
  coord_options.enable_materialisation_cache = false;
  coord_options.cluster = std::move(copts);
  auto coordinator = galois::Database::Open(std::move(coord_options));
  if (!coordinator.ok()) {
    state.SkipWithError(coordinator.status().ToString().c_str());
    return;
  }
  galois::Session session = coordinator.value()->CreateSession();
  const std::string sql =
      "SELECT ci.name, co.continent FROM city ci, country co "
      "WHERE ci.country = co.name AND co.continent = 'Europe'";
  int64_t prompts = 0;
  for (auto _ : state) {
    auto result = session.Query(sql);
    if (!result.ok()) {
      state.SkipWithError(result.status().ToString().c_str());
      break;
    }
    prompts += result->cost.num_prompts;
    benchmark::DoNotOptimize(result);
  }
  if (state.iterations() > 0) {
    state.counters["prompts_per_iter"] =
        static_cast<double>(prompts) / static_cast<double>(state.iterations());
  }
  const auto cstats = coordinator.value()->cluster()->stats();
  state.counters["shards_dispatched"] =
      static_cast<double>(cstats.shards_dispatched);
  state.counters["redispatches"] = static_cast<double>(cstats.redispatches);
  for (BenchNode& node : nodes) node.server->Shutdown();
}
BENCHMARK(BM_ClusterScatterGather)
    ->Arg(1)
    ->Arg(2)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
