// Ablation for the Section 4 cleaning step: "We normalize every string
// expressing a numerical value (say, 1k) into a number (1000). The
// enforcing of type and domain constraints is a simple but crucial step to
// limit the incorrect output due to model hallucinations."
//
// Runs the numeric-heavy queries with cleaning on, cleaning without domain
// constraints, and cleaning fully off, reporting the cell-match deltas.

#include <cstdio>

#include "core/galois_executor.h"
#include "engine/executor.h"
#include "eval/metrics.h"
#include "knowledge/workload.h"
#include "llm/simulated_llm.h"

int main() {
  auto workload = galois::knowledge::SpiderLikeWorkload::Create();
  if (!workload.ok()) {
    std::fprintf(stderr, "workload: %s\n",
                 workload.status().ToString().c_str());
    return 1;
  }

  struct Config {
    const char* label;
    bool cleaning;
    bool domains;
  };
  const Config configs[] = {
      {"cleaning + domain constraints", true, true},
      {"cleaning only", true, false},
      {"no cleaning (raw strings)", false, false},
  };

  // Queries whose outputs contain numeric cells (selections projecting
  // numbers, all aggregates).
  std::printf("Cleaning ablation (ChatGPT profile, numeric queries)\n");
  std::printf("  %-32s %12s %12s\n", "configuration", "cell match",
              "cardinality");
  for (const Config& config : configs) {
    galois::llm::SimulatedLlm model(&workload->kb(),
                                    galois::llm::ModelProfile::ChatGpt(),
                                    &workload->catalog());
    galois::core::ExecutionOptions options;
    options.enable_cleaning = config.cleaning;
    options.enforce_domains = config.domains;
    galois::core::GaloisExecutor galois(&model, &workload->catalog(),
                                        options);
    double total_match = 0.0;
    double total_card = 0.0;
    int count = 0;
    for (const galois::knowledge::QuerySpec& q : workload->queries()) {
      bool numeric = q.query_class ==
                         galois::knowledge::QueryClass::kAggregate ||
                     q.query_class ==
                         galois::knowledge::QueryClass::kJoinAggregate ||
                     q.id == 13;  // population projection
      if (!numeric) continue;
      auto rd = galois::engine::ExecuteSql(q.sql, workload->catalog());
      if (!rd.ok()) {
        std::fprintf(stderr, "q%d ground truth failed\n", q.id);
        return 1;
      }
      auto rm = galois.ExecuteSql(q.sql);
      if (!rm.ok()) {
        // Without cleaning, aggregates over raw strings abort with a type
        // error — the query returns nothing, scored as a total miss.
        total_match += 0.0;
        total_card +=
            galois::eval::CardinalityDiffPercent(rd->NumRows(), 0);
        ++count;
        continue;
      }
      total_match += galois::eval::MatchCells(*rd, *rm).Percent();
      total_card += galois::eval::CardinalityDiffPercent(rd->NumRows(),
                                                         rm->NumRows());
      ++count;
    }
    std::printf("  %-32s %11.0f%% %+11.1f%%\n", config.label,
                total_match / count, total_card / count);
  }
  std::printf(
      "\nExpected shape: dropping the cleaning step hurts most (numeric "
      "comparisons\nagainst raw strings fail); dropping only the domain "
      "constraints hurts less.\n");
  return 0;
}
