// Section 6 "Portability": the same SQL script executes on all four
// models, but the returned relations differ. For a subset of queries this
// bench reports, per pair of models, how much their outputs agree —
// quantifying "the same prompt does not give equivalent results across
// LLMs".

#include <cstdio>
#include <vector>

#include "core/galois_executor.h"
#include "eval/metrics.h"
#include "knowledge/workload.h"
#include "llm/model_profile.h"
#include "llm/simulated_llm.h"

int main() {
  auto workload = galois::knowledge::SpiderLikeWorkload::Create();
  if (!workload.ok()) {
    std::fprintf(stderr, "workload: %s\n",
                 workload.status().ToString().c_str());
    return 1;
  }
  const int query_ids[] = {1, 2, 6, 9, 12, 14};  // selection subset
  auto models = galois::llm::ModelProfile::AllPaperModels();

  // results[model][query] relation.
  std::vector<std::vector<galois::Relation>> results(models.size());
  for (size_t m = 0; m < models.size(); ++m) {
    galois::llm::SimulatedLlm model(&workload->kb(), models[m],
                                    &workload->catalog());
    galois::core::GaloisExecutor galois(&model, &workload->catalog());
    for (int id : query_ids) {
      auto spec = workload->GetQuery(id);
      auto rm = galois.ExecuteSql(spec.value()->sql);
      if (!rm.ok()) {
        std::fprintf(stderr, "%s q%d: %s\n", models[m].name.c_str(), id,
                     rm.status().ToString().c_str());
        return 1;
      }
      results[m].push_back(std::move(rm).value());
    }
  }

  std::printf(
      "Cross-model agreement: average cell match of row model vs column "
      "model\n(100%% would mean SQL portability carried over to LLMs)\n\n");
  std::printf("  %-20s", "");
  for (const auto& m : models) std::printf("%12.10s", m.name.c_str());
  std::printf("\n");
  for (size_t a = 0; a < models.size(); ++a) {
    std::printf("  %-20s", models[a].name.c_str());
    for (size_t b = 0; b < models.size(); ++b) {
      double total = 0.0;
      for (size_t q = 0; q < std::size(query_ids); ++q) {
        total +=
            galois::eval::MatchCells(results[a][q], results[b][q])
                .Percent();
      }
      std::printf("%11.0f%%", total / std::size(query_ids));
    }
    std::printf("\n");
  }
  std::printf(
      "\nDiagonal = 100 (self agreement). Off-diagonal values well below "
      "100 show the\npaper's portability gap across models.\n");
  return 0;
}
