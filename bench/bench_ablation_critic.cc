// Ablation for the Section 6 "Knowledge of the Unknown" extension: a
// second model verifies every generated cell ("verification is easier
// than generation"), nulling the cells the critic rejects. Measures the
// accuracy gain and the prompt cost over the projection-heavy queries.

#include <algorithm>
#include <cstdio>

#include "core/galois_executor.h"
#include "engine/executor.h"
#include "eval/metrics.h"
#include "knowledge/workload.h"
#include "llm/simulated_llm.h"

int main() {
  auto workload = galois::knowledge::SpiderLikeWorkload::Create();
  if (!workload.ok()) {
    std::fprintf(stderr, "workload: %s\n",
                 workload.status().ToString().c_str());
    return 1;
  }

  struct Config {
    const char* label;
    bool verify;
  };
  const Config configs[] = {{"no verification (paper prototype)", false},
                            {"critic verifies every cell", true}};

  std::printf(
      "Critic-verification ablation (ChatGPT profile, selection + "
      "aggregate queries)\n");
  std::printf("  %-36s %10s %12s %14s\n", "configuration", "prompts",
              "cell match", "wrong cells");
  for (const Config& config : configs) {
    galois::llm::SimulatedLlm model(&workload->kb(),
                                    galois::llm::ModelProfile::ChatGpt(),
                                    &workload->catalog());
    galois::core::ExecutionOptions options;
    options.verify_cells = config.verify;
    galois::core::GaloisExecutor galois(&model, &workload->catalog(),
                                        options);
    double total_prompts = 0.0;
    double total_match = 0.0;
    double wrong_cells = 0.0;
    int count = 0;
    for (const galois::knowledge::QuerySpec& q : workload->queries()) {
      if (q.query_class == galois::knowledge::QueryClass::kJoin ||
          q.query_class ==
              galois::knowledge::QueryClass::kJoinAggregate) {
        continue;  // joins fail on surface forms regardless of the critic
      }
      auto rd = galois::engine::ExecuteSql(q.sql, workload->catalog());
      auto out = galois.RunSql(q.sql);
      if (!rd.ok() || !out.ok()) {
        std::fprintf(stderr, "q%d failed\n", q.id);
        return 1;
      }
      const galois::Relation* rm = &out->relation;
      total_prompts += static_cast<double>(out->cost.num_prompts);
      total_match += galois::eval::MatchCells(*rd, *rm).Percent();
      // Count surviving value hallucinations: for rows whose first column
      // identifies a ground-truth row, non-NULL cells that contradict the
      // truth. (Membership errors from noisy filters are out of the
      // critic's reach by design — it verifies values, not selections.)
      // NULLed cells are honest "don't know"s and do not count.
      size_t wrong = 0;
      for (size_t r = 0; r < rm->NumRows(); ++r) {
        for (size_t t = 0; t < rd->NumRows(); ++t) {
          if (!galois::eval::CellMatches(rd->At(t, 0), rm->At(r, 0))) {
            continue;
          }
          size_t cols = std::min(rm->NumColumns(), rd->NumColumns());
          for (size_t c = 1; c < cols; ++c) {
            const galois::Value& v = rm->At(r, c);
            if (!v.is_null() &&
                !galois::eval::CellMatches(rd->At(t, c), v)) {
              ++wrong;
            }
          }
          break;
        }
      }
      wrong_cells += static_cast<double>(wrong);
      ++count;
    }
    std::printf("  %-36s %10.0f %11.0f%% %14.1f\n", config.label,
                total_prompts / count, total_match / count,
                wrong_cells / count);
  }
  std::printf(
      "\nExpected shape: the critic roughly doubles the attribute-prompt "
      "budget and\ncuts the confidently-wrong cells, replacing them with "
      "honest NULLs.\n");
  return 0;
}
